// Cross-module property tests: invariants that must hold across randomized
// inputs and the whole cell/benchmark space, complementing the per-module
// example-based tests.
#include <algorithm>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/geom/polygon.h"
#include "src/geom/polygon_ops.h"
#include "src/litho/simulator.h"
#include "src/cdx/contour.h"
#include "src/netlist/generators.h"
#include "src/netlist/verilog.h"
#include "src/opc/fragment.h"
#include "src/sta/sta.h"
#include "src/sta/timing_graph.h"
#include "src/stdcell/library.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

// ---------------------------------------------------------------- geometry

class EdgeMoveProperty : public ::testing::TestWithParam<int> {};

TEST_P(EdgeMoveProperty, AreaChangeMatchesFirstOrder) {
  // For small moves, dA = sum(move_i * len_i) + O(move^2) corner terms.
  Rng rng(GetParam() * 13);
  const Polygon poly({{0, 0}, {200, 0}, {200, 120}, {120, 120},
                      {120, 260}, {0, 260}});
  std::vector<DbUnit> moves(poly.size());
  double first_order = 0.0;
  double move_sq = 0.0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    moves[i] = rng.uniform_int(-4, 4);
    first_order += static_cast<double>(moves[i]) *
                   static_cast<double>(poly.edge(i).length());
    move_sq += static_cast<double>(moves[i] * moves[i]);
  }
  const Polygon moved = poly.with_edge_moves(moves);
  const double delta = moved.area() - poly.area();
  // Corner cross-terms are bounded by sum of |move_i * move_j| pairs.
  EXPECT_NEAR(delta, first_order, 2.0 * move_sq + 64.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeMoveProperty, ::testing::Range(1, 16));

class FragmentRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FragmentRoundTrip, ZeroBiasReconstructsRandomStaircase) {
  Rng rng(GetParam() * 101);
  std::vector<Point> verts;
  DbUnit x = 0, y = 0;
  verts.push_back({0, 0});
  const int steps = 2 + GetParam() % 4;
  for (int i = 0; i < steps; ++i) {
    x += rng.uniform_int(60, 200);
    verts.push_back({x, y});
    y += rng.uniform_int(60, 200);
    verts.push_back({x, y});
  }
  verts.push_back({0, y});
  const Polygon poly(verts);
  auto frags = fragment_polygons({poly});
  const auto out = apply_fragments({poly}, frags);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].area(), poly.area());
  EXPECT_EQ(out[0].bbox(), poly.bbox());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentRoundTrip, ::testing::Range(1, 13));

// ------------------------------------------------------------------ litho

class LithoTranslation : public ::testing::TestWithParam<int> {};

TEST_P(LithoTranslation, PrintedCdInvariantUnderLayoutShift) {
  // Shifting mask and window together must not change the printed CD
  // (beyond grid re-sampling noise).
  const DbUnit shift = GetParam() * 37;  // deliberately off-grid
  const LithoSimulator sim;
  const auto cd_at = [&](DbUnit dx, DbUnit dy) {
    std::vector<Rect> lines;
    for (int k = -2; k <= 2; ++k) {
      lines.push_back({k * 250 + dx, -500 + dy, k * 250 + 90 + dx, 500 + dy});
    }
    const Rect window{-700 + dx, -650 + dy, 790 + dx, 650 + dy};
    const Image2D latent = sim.latent(lines, window, {}, LithoQuality::kStandard);
    return printed_width(latent, sim.print_threshold(),
                         {45.0 + static_cast<double>(dx),
                          static_cast<double>(dy)},
                         true, 300.0)
        .value_or(0.0);
  };
  const double base = cd_at(0, 0);
  const double moved = cd_at(shift, -shift);
  ASSERT_GT(base, 0.0);
  EXPECT_NEAR(moved, base, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Shifts, LithoTranslation, ::testing::Range(1, 8));

TEST(LithoProperty, DoseMonotonicityAcrossConditions) {
  // At any focus, higher dose always thins the printed line.
  const LithoSimulator sim;
  std::vector<Rect> lines;
  for (int k = -2; k <= 2; ++k) lines.push_back({k * 250, -500, k * 250 + 90, 500});
  const Rect window{-700, -650, 790, 650};
  for (double focus : {0.0, 80.0, 140.0}) {
    double prev = 1e9;
    for (double dose : {0.92, 0.97, 1.02, 1.07}) {
      const Image2D latent =
          sim.latent(lines, window, {focus, dose}, LithoQuality::kDraft);
      const double cd = printed_width(latent, sim.print_threshold(),
                                      {45.0, 0.0}, true, 300.0)
                            .value_or(0.0);
      EXPECT_LT(cd, prev) << "focus " << focus << " dose " << dose;
      prev = cd;
    }
  }
}

// ---------------------------------------------------------------- library

class NldmMonotone : public ::testing::TestWithParam<std::string> {};

TEST_P(NldmMonotone, DelayAndSlewMonotoneInLoadForEveryArc) {
  const CellTiming& timing = lib().timing(GetParam());
  const auto& params = lib().char_params();
  for (const TimingArc& arc : timing.arcs) {
    for (Ps slew : params.slew_axis) {
      for (std::size_t l = 0; l + 1 < params.load_axis.size(); ++l) {
        const Ff lo = params.load_axis[l];
        const Ff hi = params.load_axis[l + 1];
        EXPECT_LT(arc.delay_fall.lookup(slew, lo),
                  arc.delay_fall.lookup(slew, hi))
            << GetParam() << " " << arc.input;
        EXPECT_LT(arc.delay_rise.lookup(slew, lo),
                  arc.delay_rise.lookup(slew, hi));
        EXPECT_LE(arc.slew_fall.lookup(slew, lo),
                  arc.slew_fall.lookup(slew, hi));
        EXPECT_LE(arc.slew_rise.lookup(slew, lo),
                  arc.slew_rise.lookup(slew, hi));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, NldmMonotone,
                         ::testing::Values("INV_X1", "INV_X2", "INV_X4",
                                           "NAND2_X1", "NAND2_X2", "NAND3_X1",
                                           "NOR2_X1", "NOR2_X2", "NOR3_X1",
                                           "AOI21_X1", "OAI21_X1",
                                           "INV_X1_LL", "NAND2_X1_LL",
                                           "NOR2_X1_LL", "AOI21_X1_LL"));

// --------------------------------------------------------------- netlists

class VerilogRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(VerilogRoundTrip, RandomNetlistsSurviveTextually) {
  const Netlist nl =
      make_random_logic(40 + GetParam() * 17, 8 + GetParam() % 5,
                        static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::string text = verilog_to_string(nl);
  const Netlist back = verilog_from_string(text);
  EXPECT_EQ(verilog_to_string(back), text);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.logic_depth(), nl.logic_depth());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogRoundTrip, ::testing::Range(1, 11));

// --------------------------------------------------------------------- sta

class StaSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(StaSanity, ReportInvariantsOnEveryBenchmark) {
  const Netlist nl = make_benchmark(GetParam());
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 2000.0;
  opts.max_paths = 24;
  const StaReport r = engine.run(opts);
  EXPECT_GT(r.worst_arrival, 0.0);
  EXPECT_NEAR(r.worst_slack, opts.clock_period - r.worst_arrival, 1e-9);
  ASSERT_FALSE(r.paths.empty());
  EXPECT_NEAR(r.paths[0].arrival, r.worst_arrival, 1e-6);
  EXPECT_GT(r.total_leakage_ua, 0.0);
  // Arrival scales up monotonically under uniform slowdown.
  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (auto& a : ann) a.fall_scale = a.rise_scale = 1.1;
  engine.set_annotations(ann);
  EXPECT_GT(engine.run(opts).worst_arrival, r.worst_arrival);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, StaSanity,
                         ::testing::Values("c17", "adder4", "adder8",
                                           "adder16", "mult4", "rand100",
                                           "rand200"));

// ------------------------------------------------- incremental worklist STA

bool node_bits_eq(const NodeTime& a, const NodeTime& b) {
  return a.valid == b.valid &&
         std::memcmp(&a.at, &b.at, sizeof(double)) == 0 &&
         std::memcmp(&a.slew, &b.slew, sizeof(double)) == 0;
}

DelayAnnotation perturbed(Rng& rng) {
  DelayAnnotation a;
  a.fall_scale = 1.0 + rng.uniform(0.05, 0.35);
  a.rise_scale = 1.0 + rng.uniform(0.05, 0.35);
  a.leak_scale = 1.0 + rng.uniform(-0.1, 0.2);
  return a;
}

class IncrementalCone : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalCone, PerturbationStaysInsideAffectedRegion) {
  // Cone containment: a perturbation of gate g changes arrivals only in
  // fanout_cone(g) and slacks only in affected_region(g) (the fanin closure
  // of the fanout cone — reconvergent siblings see required-time shifts).
  Rng rng(GetParam() * 71);
  const Netlist nl = make_random_logic(70, 8, GetParam());
  TimingGraph graph(nl, lib());
  std::vector<NodeTime> rise_before(nl.num_nets()), fall_before(nl.num_nets());
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    rise_before[n] = graph.arrival(n, true);
    fall_before[n] = graph.arrival(n, false);
  }
  const std::vector<Ps> slack_before = graph.gate_slacks();

  const GateIdx g = static_cast<GateIdx>(
      rng.uniform_int(0, static_cast<int>(nl.num_gates()) - 1));
  graph.set_annotation(g, perturbed(rng));
  graph.update_delays({g});

  std::vector<char> in_cone(nl.num_gates(), 0);
  for (GateIdx c : graph.fanout_cone(g)) in_cone[c] = 1;
  std::vector<char> in_region(nl.num_gates(), 0);
  for (GateIdx c : graph.affected_region(g)) in_region[c] = 1;

  for (GateIdx h = 0; h < nl.num_gates(); ++h) {
    const NetIdx out = nl.gate(h).output;
    if (!in_cone[h]) {
      EXPECT_TRUE(node_bits_eq(graph.arrival(out, true), rise_before[out]))
          << "arrival moved outside fanout cone, gate " << h;
      EXPECT_TRUE(node_bits_eq(graph.arrival(out, false), fall_before[out]))
          << "arrival moved outside fanout cone, gate " << h;
    }
  }
  const std::vector<Ps> slack_after = graph.gate_slacks();
  for (GateIdx h = 0; h < nl.num_gates(); ++h) {
    if (!in_region[h]) {
      EXPECT_EQ(slack_after[h], slack_before[h])
          << "slack moved outside affected region, gate " << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCone, ::testing::Range(1, 9));

TEST(IncrementalProperty, NoChangeUpdateIsNoOp) {
  // Idempotence: re-applying the current annotations, or update_delays on
  // gates whose values did not move, performs zero re-evaluation.
  const Netlist nl = make_benchmark("adder8");
  TimingGraph graph(nl, lib());
  std::vector<DelayAnnotation> ann(nl.num_gates());
  ann[5].fall_scale = 1.2;
  graph.set_annotations(ann);
  graph.report();  // settle arrivals and requireds
  graph.reset_stats();

  graph.set_annotations(ann);  // identical vector: diff marks nothing
  graph.flush();
  EXPECT_EQ(graph.stats().forward_flushes, 0u);
  EXPECT_EQ(graph.stats().arrival_evals, 0u);

  // update_delays on an unchanged gate re-evaluates it (the caller claimed
  // it changed) but propagation must cut immediately at its bit-identical
  // output.
  const Ps ws = graph.worst_slack();
  graph.update_delays({3});
  EXPECT_LE(graph.stats().arrival_evals, 1u);
  EXPECT_EQ(graph.worst_slack(), ws);
}

TEST(IncrementalProperty, DisjointUpdatesCommute) {
  // Commutativity: updates whose affected regions are disjoint give the
  // same graph state applied in either order (and match one-shot).
  const Netlist nl = make_random_logic(80, 10, 11);
  Rng rng(1234);
  TimingGraph probe(nl, lib());
  // Find a disjoint pair of affected regions.
  GateIdx a = kNoIndex, b = kNoIndex;
  [&] {
    for (GateIdx i = 0; i < nl.num_gates(); ++i) {
      std::vector<char> ra(nl.num_gates(), 0);
      for (GateIdx x : probe.affected_region(i)) ra[x] = 1;
      for (GateIdx j = i + 1; j < nl.num_gates(); ++j) {
        bool disjoint = true;
        for (GateIdx x : probe.affected_region(j)) {
          if (ra[x]) {
            disjoint = false;
            break;
          }
        }
        if (disjoint) {
          a = i;
          b = j;
          return;
        }
      }
    }
  }();
  ASSERT_NE(a, kNoIndex) << "benchmark has no disjoint affected regions";

  const DelayAnnotation ann_a = perturbed(rng);
  const DelayAnnotation ann_b = perturbed(rng);
  const auto apply = [&](TimingGraph& g, GateIdx gate,
                         const DelayAnnotation& ann) {
    g.set_annotation(gate, ann);
    g.update_delays({gate});
  };

  TimingGraph ab(nl, lib());
  apply(ab, a, ann_a);
  apply(ab, b, ann_b);
  TimingGraph ba(nl, lib());
  apply(ba, b, ann_b);
  apply(ba, a, ann_a);

  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    EXPECT_TRUE(node_bits_eq(ab.arrival(n, true), ba.arrival(n, true)));
    EXPECT_TRUE(node_bits_eq(ab.arrival(n, false), ba.arrival(n, false)));
    EXPECT_EQ(ab.required(n, true), ba.required(n, true));
    EXPECT_EQ(ab.required(n, false), ba.required(n, false));
  }
  EXPECT_EQ(ab.worst_slack(), ba.worst_slack());
}

}  // namespace
}  // namespace poc
