// Unit tests for the deterministic parallel window engine: pool lifecycle,
// index coverage, chunk-size edge cases, exception propagation out of
// workers, nested-submission deadlock guard, and the bit-identical
// map/reduce contract.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/par/thread_pool.h"

namespace poc {
namespace {

TEST(ThreadPool, StartupShutdownAcrossSizes) {
  // Pools must come up and wind down cleanly whether or not they ever ran
  // a batch, including the degenerate workerless pool.
  for (std::size_t workers : {0u, 1u, 3u, 8u}) {
    ThreadPool idle(workers);
    EXPECT_EQ(idle.workers(), workers);
  }
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.parallel_for(100, 7, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 100);
  }
}

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  parallel_for(4, 0, 1, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(3);
  for (std::size_t n : {1u, 2u, 5u, 64u, 1000u}) {
    for (std::size_t chunk : {1u, 3u, 64u, 5000u}) {
      std::vector<int> hits(n, 0);
      pool.parallel_for(n, chunk, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "n=" << n << " chunk=" << chunk << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ZeroChunkRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(4, 0, [](std::size_t) {}), CheckError);
  EXPECT_THROW(parallel_for(2, 4, 0, [](std::size_t) {}), CheckError);
}

TEST(ThreadPool, ChunkLargerThanRangeRunsSerial) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  // One chunk -> one participant -> strictly ascending visit order.
  pool.parallel_for(10, 100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(50, 4,
                        [](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom 17");
                        }),
      std::runtime_error);
  // The pool must remain fully usable after a throwing batch.
  std::atomic<int> hits{0};
  pool.parallel_for(50, 4, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, LowestChunkExceptionWinsDeterministically) {
  // Every item throws; whatever the scheduling, the rethrown error must be
  // the first item of the lowest-indexed chunk.
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
    try {
      pool.parallel_for(64, 4, [](std::size_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPool, NestedSubmissionRunsInlineWithoutDeadlock) {
  // A worker that submits a child loop must not block on the pool it is
  // itself draining; the free function runs nested calls serially inline.
  std::vector<std::vector<int>> inner_hits(16, std::vector<int>(8, 0));
  parallel_for(4, 16, 1, [&](std::size_t outer) {
    parallel_for(4, 8, 1,
                 [&](std::size_t inner) { ++inner_hits[outer][inner]; });
  });
  for (const auto& row : inner_hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, MapReduceMatchesSerialSum) {
  const std::size_t n = 1000;
  const auto map = [](std::size_t i) { return static_cast<std::int64_t>(i); };
  const auto reduce = [](std::int64_t a, std::int64_t b) { return a + b; };
  const std::int64_t expected = static_cast<std::int64_t>(n * (n - 1) / 2);
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    EXPECT_EQ(parallel_map_reduce<std::int64_t>(threads, n, 16, 0, map,
                                                reduce),
              expected);
  }
}

TEST(ThreadPool, DoubleReductionBitIdenticalAcrossThreadCounts) {
  // Floating-point addition is not associative; the engine promises the
  // fold happens in index order regardless of thread count, so the sums
  // must match to the last bit, not just approximately.
  const std::size_t n = 4096;
  const auto map = [](std::size_t i) {
    return 1.0 / (static_cast<double>(i) + 1.0);
  };
  const auto reduce = [](double a, double b) { return a + b; };
  const double serial =
      parallel_map_reduce<double>(1, n, 8, 0.0, map, reduce);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const double parallel =
        parallel_map_reduce<double>(threads, n, 8, 0.0, map, reduce);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, SlotWritesRaceFreeUnderLoad) {
  // Stress the stealing paths: many small chunks, each writing its own
  // slot.  Under POC_SANITIZE=thread this is the canonical race detector.
  ThreadPool pool(4);
  const std::size_t n = 20000;
  std::vector<std::uint64_t> slots(n, 0);
  pool.parallel_for(n, 3, [&](std::size_t i) {
    slots[i] = splitmix64(i);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(slots[i], splitmix64(i)) << i;
  }
}

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(6), 6u);
}

}  // namespace
}  // namespace poc
