// Tests for the standard-cell library: switch networks and logic, NLDM
// tables, characterization behaviours, layout generation and the library
// cache, plus validation of the drive-ratio delay-scaling approximation the
// back-annotation relies on.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/geom/polygon_ops.h"
#include "src/stdcell/cell_spec.h"
#include "src/stdcell/characterize.h"
#include "src/stdcell/layout_gen.h"
#include "src/stdcell/liberty_writer.h"
#include "src/stdcell/library.h"
#include "src/stdcell/library_io.h"

namespace poc {
namespace {

/// Reference truth tables keyed by cell name; index = input bitmask with
/// input 0 as bit 0.
bool reference_output(const std::string& cell, unsigned mask) {
  const bool a = mask & 1, b = mask & 2, c = mask & 4;
  if (cell.starts_with("INV")) return !a;
  if (cell.starts_with("NAND2")) return !(a && b);
  if (cell.starts_with("NAND3")) return !(a && b && c);
  if (cell.starts_with("NOR2")) return !(a || b);
  if (cell.starts_with("NOR3")) return !(a || b || c);
  if (cell.starts_with("AOI21")) return !((a && b) || c);
  if (cell.starts_with("OAI21")) return !((a || b) && c);
  check_fail("reference_output", cell.c_str(), __FILE__, __LINE__);
}

TEST(NetExpr, DualSwapsSeriesParallel) {
  const auto e = NetExpr::series(
      {NetExpr::leaf(0), NetExpr::parallel({NetExpr::leaf(1), NetExpr::leaf(2)})});
  const auto d = e.dual();
  EXPECT_EQ(d.kind, NetExpr::Kind::kParallel);
  EXPECT_EQ(d.children[1].kind, NetExpr::Kind::kSeries);
  EXPECT_EQ(e.num_devices(), 3u);
  EXPECT_EQ(e.stack_depth(), 2u);
  EXPECT_EQ(d.stack_depth(), 2u);
}

class CellLogic : public ::testing::TestWithParam<std::string> {};

TEST_P(CellLogic, TruthTableMatchesReference) {
  const auto specs = standard_cell_specs();
  const CellSpec& spec = find_spec(specs, GetParam());
  const std::size_t n = spec.inputs.size();
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> in(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = (mask >> i) & 1u;
    EXPECT_EQ(spec.eval(in), reference_output(spec.name, mask))
        << spec.name << " mask " << mask;
    // Complementarity (De Morgan): the PMOS pull-up, whose switches close
    // on low inputs, conducts exactly when the pull-down does not.
    std::vector<bool> inverted(n);
    for (std::size_t i = 0; i < n; ++i) inverted[i] = !in[i];
    EXPECT_NE(spec.pulldown.conducts(in), spec.pullup().conducts(inverted))
        << "complementarity " << spec.name;
  }
}

TEST_P(CellLogic, EveryInputHasNoncontrollingAssignment) {
  const auto specs = standard_cell_specs();
  const CellSpec& spec = find_spec(specs, GetParam());
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    const auto side = spec.noncontrolling_for(i);
    std::vector<bool> v = side;
    v[i] = true;
    const bool out_hi_in = spec.eval(v);
    v[i] = false;
    EXPECT_NE(spec.eval(v), out_hi_in);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellLogic,
                         ::testing::Values("INV_X1", "INV_X2", "INV_X4",
                                           "NAND2_X1", "NAND2_X2", "NAND3_X1",
                                           "NOR2_X1", "NOR2_X2", "NOR3_X1",
                                           "AOI21_X1", "OAI21_X1"));

TEST(Nldm, LookupBilinearAndClamped) {
  NldmTable t({10.0, 100.0}, {1.0, 10.0});
  t.set(0, 0, 1.0);
  t.set(0, 1, 2.0);
  t.set(1, 0, 3.0);
  t.set(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(10.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(55.0, 5.5), 2.5);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 1.0);      // clamped low
  EXPECT_DOUBLE_EQ(t.lookup(500.0, 100.0), 4.0);  // clamped high
  EXPECT_DOUBLE_EQ(t.scaled(2.0).lookup(10.0, 1.0), 2.0);
}

class CharFixture : public ::testing::Test {
 protected:
  static const StdCellLibrary& lib() {
    static const StdCellLibrary lib =
        StdCellLibrary::load_or_characterize(cache_path());
    return lib;
  }
  static std::string cache_path() {
    return (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
        .string();
  }
};

TEST_F(CharFixture, DelayMonotoneInLoadAndSlew) {
  const CellTiming& t = lib().timing("INV_X1");
  const TimingArc& arc = t.arcs[0];
  for (double slew : {10.0, 75.0, 300.0}) {
    EXPECT_LT(arc.delay_fall.lookup(slew, 1.0),
              arc.delay_fall.lookup(slew, 30.0));
  }
  for (double load : {1.0, 7.0, 30.0}) {
    EXPECT_LT(arc.delay_fall.lookup(10.0, load),
              arc.delay_fall.lookup(300.0, load));
  }
}

TEST_F(CharFixture, OutputSlewGrowsWithLoad) {
  const TimingArc& arc = lib().timing("NAND2_X1").arcs[0];
  EXPECT_LT(arc.slew_rise.lookup(30.0, 1.0), arc.slew_rise.lookup(30.0, 30.0));
}

TEST_F(CharFixture, HigherDriveIsFaster) {
  const double d1 =
      lib().timing("INV_X1").arcs[0].delay_fall.lookup(50.0, 20.0);
  const double d2 =
      lib().timing("INV_X2").arcs[0].delay_fall.lookup(50.0, 20.0);
  const double d4 =
      lib().timing("INV_X4").arcs[0].delay_fall.lookup(50.0, 20.0);
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d4);
}

TEST_F(CharFixture, LaterNandInputIsNotFree) {
  // All NAND3 arcs have sane positive delays.
  const CellTiming& t = lib().timing("NAND3_X1");
  ASSERT_EQ(t.arcs.size(), 3u);
  for (const TimingArc& arc : t.arcs) {
    EXPECT_GT(arc.delay_fall.lookup(30.0, 7.0), 1.0);
    EXPECT_GT(arc.delay_rise.lookup(30.0, 7.0), 1.0);
  }
}

TEST_F(CharFixture, InputCapsAndLeakagePositive) {
  for (const CellSpec& spec : lib().specs()) {
    const CellTiming& t = lib().timing(spec.name);
    EXPECT_EQ(t.input_caps.size(), spec.inputs.size());
    for (Ff c : t.input_caps) EXPECT_GT(c, 0.2);
    EXPECT_GT(t.leakage_ua, 0.0);
    EXPECT_GT(t.output_self_cap, 0.0);
  }
}

TEST_F(CharFixture, CacheRoundTripsExactly) {
  const std::string path = cache_path() + ".roundtrip";
  save_library(lib(), path);
  const auto loaded = try_load_library(path, lib().char_params());
  ASSERT_TRUE(loaded.has_value());
  for (const CellSpec& spec : lib().specs()) {
    const CellTiming& a = lib().timing(spec.name);
    const CellTiming& b = loaded->timing(spec.name);
    EXPECT_DOUBLE_EQ(a.leakage_ua, b.leakage_ua);
    for (std::size_t arc = 0; arc < a.arcs.size(); ++arc) {
      EXPECT_DOUBLE_EQ(a.arcs[arc].delay_fall.lookup(42.0, 9.0),
                       b.arcs[arc].delay_fall.lookup(42.0, 9.0));
    }
  }
  std::filesystem::remove(path);
}

TEST_F(CharFixture, StaleCacheRejected) {
  const std::string path = cache_path() + ".stale";
  save_library(lib(), path);
  CharParams other;
  other.nmos.k_ua_per_um *= 1.1;  // different device model
  EXPECT_FALSE(try_load_library(path, other).has_value());
  CharParams other_axes = lib().char_params();
  other_axes.load_axis.back() += 1.0;
  EXPECT_FALSE(try_load_library(path, other_axes).has_value());
  EXPECT_FALSE(try_load_library("/nonexistent/file.lib", CharParams{}));
  std::filesystem::remove(path);
}

TEST_F(CharFixture, DriveRatioScalingPredictsShortChannelDelay) {
  // The back-annotation scales NLDM delay by Ion(drawn)/Ion(L).  Validate
  // against full re-characterization at L = 84 and L = 96 nm.
  const CharParams& cp = lib().char_params();
  const auto specs = standard_cell_specs();
  const CellSpec& inv = find_spec(specs, "INV_X1");
  for (double l : {84.0, 96.0}) {
    const Expected<ArcMeasurement> direct =
        measure_arc(inv, cp, 0, /*input_rising=*/true, 50.0, 10.0, l, l);
    const Expected<ArcMeasurement> nominal =
        measure_arc(inv, cp, 0, true, 50.0, 10.0, 90.0, 90.0);
    ASSERT_TRUE(direct.has_value() && nominal.has_value());
    ASSERT_TRUE(direct->valid && nominal->valid);
    const double scale = cp.nmos.ion_per_um(90.0) / cp.nmos.ion_per_um(l);
    const double predicted = nominal->delay * scale;
    // First-order model: within 10 % of the resimulated truth.
    EXPECT_NEAR(predicted / direct->delay, 1.0, 0.10) << "L=" << l;
  }
}

TEST(LayoutGen, FingerCountAndWidth) {
  const auto specs = standard_cell_specs();
  const Tech& tech = Tech::default_tech();
  EXPECT_EQ(finger_count(find_spec(specs, "INV_X1")), 1u);
  EXPECT_EQ(finger_count(find_spec(specs, "INV_X2")), 2u);
  EXPECT_EQ(finger_count(find_spec(specs, "NAND3_X1")), 3u);
  EXPECT_EQ(cell_width(find_spec(specs, "INV_X1"), tech), 300);
  EXPECT_EQ(cell_width(find_spec(specs, "NAND3_X1"), tech), 900);
}

TEST(LayoutGen, GatesAnnotatedPerFingerAndType) {
  const auto specs = standard_cell_specs();
  const Tech& tech = Tech::default_tech();
  const CellLayout cell =
      generate_cell_layout(find_spec(specs, "NAND2_X1"), tech);
  EXPECT_EQ(cell.gates.size(), 4u);  // 2 fingers x N/P
  std::size_t nmos = 0;
  for (const GateInfo& g : cell.gates) {
    if (g.is_nmos) ++nmos;
    EXPECT_EQ(g.region.width(), tech.gate_length);
    EXPECT_TRUE(cell.boundary.contains(g.region));
  }
  EXPECT_EQ(nmos, 2u);
}

TEST(LayoutGen, ShapesStayInsideBoundaryAndSpacingHolds) {
  const auto specs = standard_cell_specs();
  const Tech& tech = Tech::default_tech();
  for (const char* name : {"INV_X1", "NAND3_X1", "AOI21_X1", "INV_X4"}) {
    const CellLayout cell = generate_cell_layout(find_spec(specs, name), tech);
    std::vector<Rect> poly;
    for (const Shape& s : cell.shapes) {
      EXPECT_TRUE(cell.boundary.contains(s.poly.bbox())) << name;
      if (s.layer == Layer::kPoly) {
        for (const Rect& r : decompose(s.poly)) poly.push_back(r);
      }
    }
    // Poly-to-poly spacing >= tech.poly_space between distinct fingers.
    for (std::size_t i = 0; i < poly.size(); ++i) {
      for (std::size_t j = i + 1; j < poly.size(); ++j) {
        if (poly[i].intersects(poly[j])) continue;  // same finger pieces
        if (poly[i].yhi <= poly[j].ylo || poly[j].yhi <= poly[i].ylo) continue;
        const DbUnit gap = std::max(poly[i].xlo, poly[j].xlo) -
                           std::min(poly[i].xhi, poly[j].xhi);
        if (gap > 0) EXPECT_GE(gap, tech.poly_space) << name;
      }
    }
  }
}

TEST(LayoutGen, PolyFingerIsSinglePlusShapedPolygon) {
  const auto specs = standard_cell_specs();
  const CellLayout cell = generate_cell_layout(find_spec(specs, "INV_X1"),
                                               Tech::default_tech());
  std::size_t poly_shapes = 0;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) {
      ++poly_shapes;
      EXPECT_EQ(s.poly.size(), 12u);  // finger + pad as one polygon
    }
  }
  EXPECT_EQ(poly_shapes, 1u);
}

TEST(LayoutGen, PinPositionsInsideCell) {
  const auto specs = standard_cell_specs();
  const Tech& tech = Tech::default_tech();
  for (const char* name : {"INV_X1", "NAND2_X1", "AOI21_X1"}) {
    const CellSpec& spec = find_spec(specs, name);
    const CellLayout cell = generate_cell_layout(spec, tech);
    for (const std::string& pin : spec.inputs) {
      EXPECT_TRUE(cell.boundary.contains(pin_position(spec, tech, pin)));
    }
    EXPECT_TRUE(
        cell.boundary.contains(pin_position(spec, tech, spec.output)));
    EXPECT_THROW(pin_position(spec, tech, "BOGUS"), CheckError);
  }
}

TEST_F(CharFixture, LongGateVariantsSlowerAndLessLeaky) {
  for (const char* base : {"INV_X1", "NAND2_X1", "NOR2_X1"}) {
    const std::string ll = long_gate_variant(base);
    ASSERT_TRUE(lib().has_cell(ll)) << ll;
    const CellTiming& fast = lib().timing(base);
    const CellTiming& slow = lib().timing(ll);
    EXPECT_GT(slow.arcs[0].delay_fall.lookup(50.0, 10.0),
              fast.arcs[0].delay_fall.lookup(50.0, 10.0));
    // Leakage falls much faster than speed (the L-biasing trade).
    EXPECT_LT(slow.leakage_ua, fast.leakage_ua * 0.75);
    const double delay_ratio = slow.arcs[0].delay_fall.lookup(50.0, 10.0) /
                               fast.arcs[0].delay_fall.lookup(50.0, 10.0);
    EXPECT_LT(delay_ratio, 1.35);
  }
}

TEST(LayoutGen, LongGateDrawsWiderPoly) {
  const auto specs = standard_cell_specs();
  const Tech& tech = Tech::default_tech();
  const CellLayout fast = generate_cell_layout(find_spec(specs, "INV_X1"), tech);
  const CellLayout slow =
      generate_cell_layout(find_spec(specs, "INV_X1_LL"), tech);
  EXPECT_EQ(slow.boundary, fast.boundary);  // same footprint
  EXPECT_EQ(slow.gates[0].drawn_l, static_cast<DbUnit>(kLongGateLengthNm));
  EXPECT_EQ(slow.gates[0].region.width(),
            static_cast<DbUnit>(kLongGateLengthNm));
  // Channel stays centred on the finger pitch.
  EXPECT_EQ(slow.gates[0].region.center().x, fast.gates[0].region.center().x);
}

TEST_F(CharFixture, LibertyExportContainsEveryCellAndParses) {
  const std::string lib_text = liberty_to_string(lib(), "poc90");
  EXPECT_NE(lib_text.find("library (poc90)"), std::string::npos);
  EXPECT_NE(lib_text.find("lu_table_template"), std::string::npos);
  for (const CellSpec& spec : lib().specs()) {
    EXPECT_NE(lib_text.find("cell (" + spec.name + ")"), std::string::npos)
        << spec.name;
  }
  // Functions are emitted for representative cells.
  EXPECT_NE(lib_text.find("function : \"!A\""), std::string::npos);
  EXPECT_NE(lib_text.find("function : \"!(A*B)\""), std::string::npos);
  EXPECT_NE(lib_text.find("function : \"!((A*B)+C)\""), std::string::npos);
  // Balanced braces (syntactic sanity for downstream parsers).
  long depth = 0;
  for (char c : lib_text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Values are in ns: an INV delay of tens of ps must appear as ~0.0x.
  EXPECT_NE(lib_text.find("timing_sense : negative_unate"),
            std::string::npos);
}

TEST(Library, LookupAndLayoutGeneration) {
  const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib").string());
  EXPECT_TRUE(l.has_cell("NAND2_X1"));
  EXPECT_FALSE(l.has_cell("XOR9_X1"));
  EXPECT_THROW(l.timing("XOR9_X1"), CheckError);
  const CellLayout layout = l.layout("NOR2_X1", Tech::default_tech());
  EXPECT_EQ(layout.name, "NOR2_X1");
  EXPECT_FALSE(layout.gates.empty());
}

}  // namespace
}  // namespace poc
