// Fault containment tests: the structured error channel (Expected /
// FlowError / capture_flow_error), the deterministic fault-injection
// harness (src/common/fault.h), the error-capturing parallel loop, and the
// flow-level retry/degrade policy reported through FlowHealth.
//
// The injection harness keys decisions off (seed, kind, domain, index),
// never thread id or call order, so every containment assertion below is
// made at 1 *and* 4 threads and expects bit-identical outcomes —
// EXPECT_EQ on doubles is deliberate, as in determinism_test.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <ios>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/error.h"
#include "src/common/fault.h"
#include "src/common/vfs.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/par/thread_pool.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

/// Installs a fault plan for the enclosing scope and always cleans up, so
/// a failing assertion cannot leak an active plan into the next test.
struct ScopedFault {
  explicit ScopedFault(const fault::Config& cfg) { fault::configure(cfg); }
  ~ScopedFault() { fault::reset(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

// ---------------------------------------------------------------------------
// Expected<T> / capture_flow_error unit tests

TEST(Expected, HoldsValueOrError) {
  Expected<int> ok = 42;
  EXPECT_TRUE(ok.has_value());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Expected<int> bad = FlowError{FaultCode::kMeasurement, 3, "test.site", "m"};
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, FaultCode::kMeasurement);
  EXPECT_EQ(bad.error().window, 3u);
  EXPECT_EQ(bad.error().origin, "test.site");
  EXPECT_EQ(bad.value_or(7), 7);
  // Value access on an error state is a contract violation, not UB.
  EXPECT_THROW(bad.value(), CheckError);
}

TEST(FlowErrorFormat, ToStringCarriesCodeWindowAndOrigin) {
  const FlowError e{FaultCode::kNonFinite, 12, "litho.latent", "NaN"};
  const std::string s = e.to_string();
  EXPECT_NE(s.find("non_finite"), std::string::npos);
  EXPECT_NE(s.find("window=12"), std::string::npos);
  EXPECT_NE(s.find("litho.latent"), std::string::npos);
  EXPECT_NE(s.find("NaN"), std::string::npos);
}

TEST(CaptureFlowError, ClassifiesInFlightExceptions) {
  // A FlowException passes its payload through; only an unset window id is
  // filled in at the catch site.
  try {
    throw FlowException(FlowError{FaultCode::kNonConvergence, kNoWindowId,
                                  "opc.correct", "stalled"});
  } catch (...) {
    const FlowError e = capture_flow_error(9, "outer.site");
    EXPECT_EQ(e.code, FaultCode::kNonConvergence);
    EXPECT_EQ(e.window, 9u);
    EXPECT_EQ(e.origin, "opc.correct");  // original origin survives
  }
  try {
    POC_EXPECTS(1 == 2);
  } catch (...) {
    const FlowError e = capture_flow_error(1, "check.site");
    EXPECT_EQ(e.code, FaultCode::kCheckFailed);
    EXPECT_EQ(e.origin, "check.site");
  }
  try {
    throw std::bad_alloc();
  } catch (...) {
    EXPECT_EQ(capture_flow_error().code, FaultCode::kAllocFailure);
  }
  try {
    throw std::runtime_error("plain");
  } catch (...) {
    const FlowError e = capture_flow_error(2, "misc");
    EXPECT_EQ(e.code, FaultCode::kUnknown);
    EXPECT_EQ(e.message, "plain");
  }
}

TEST(Expected, MoveConstructionAndAssignmentPreserveState) {
  // Move construction out of a value state.
  Expected<std::string> src = std::string("payload");
  Expected<std::string> moved = std::move(src);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(*moved, "payload");

  // Move construction out of an error state.
  Expected<std::string> bad =
      FlowError{FaultCode::kJournalIo, 5, "journal.write", "disk full"};
  Expected<std::string> moved_bad = std::move(bad);
  ASSERT_FALSE(moved_bad.has_value());
  EXPECT_EQ(moved_bad.error().code, FaultCode::kJournalIo);
  EXPECT_EQ(moved_bad.error().window, 5u);
  EXPECT_EQ(moved_bad.error().message, "disk full");

  // Move assignment across states: error <- value, then value <- error.
  moved_bad = std::move(moved);
  ASSERT_TRUE(moved_bad.has_value());
  EXPECT_EQ(*moved_bad, "payload");
  moved_bad = Expected<std::string>(
      FlowError{FaultCode::kJournalMismatch, 7, "journal.replay", "crc"});
  ASSERT_FALSE(moved_bad.has_value());
  EXPECT_EQ(moved_bad.error().code, FaultCode::kJournalMismatch);

  // Copy construction and assignment leave the source usable.
  const Expected<std::string> orig = std::string("keep");
  Expected<std::string> copy = orig;
  EXPECT_EQ(*copy, "keep");
  EXPECT_EQ(*orig, "keep");
  copy = moved_bad;
  ASSERT_FALSE(copy.has_value());
  EXPECT_EQ(copy.error().origin, "journal.replay");
  EXPECT_EQ(moved_bad.error().origin, "journal.replay");
}

TEST(CaptureFlowError, ClassifiesJournalIoFailures) {
  // Stream-level I/O failure (iostream-based journal access paths).
  try {
    throw std::ios_base::failure("stream write failed");
  } catch (...) {
    const FlowError e = capture_flow_error(kNoWindowId, "journal.write");
    EXPECT_EQ(e.code, FaultCode::kJournalIo);
    EXPECT_EQ(e.origin, "journal.write");
  }
  // OS-level I/O failure (open/write/fsync/rename on the journal path).
  try {
    throw std::system_error(std::make_error_code(std::errc::io_error),
                            "fsync");
  } catch (...) {
    const FlowError e = capture_flow_error(kNoWindowId, "journal.fsync");
    EXPECT_EQ(e.code, FaultCode::kJournalIo);
    EXPECT_NE(e.message.find("fsync"), std::string::npos);
  }
  // A structured journal fault keeps its own code through the unwind.
  try {
    throw FlowException(FlowError{FaultCode::kJournalMismatch, kNoWindowId,
                                  "journal.replay", "bad checksum"});
  } catch (...) {
    EXPECT_EQ(capture_flow_error().code, FaultCode::kJournalMismatch);
  }
}

TEST(FlowErrorFormat, NamesTheDurableRunFaultCodes) {
  EXPECT_STREQ(fault_code_name(FaultCode::kCancelled), "cancelled");
  EXPECT_STREQ(fault_code_name(FaultCode::kJournalIo), "journal_io");
  EXPECT_STREQ(fault_code_name(FaultCode::kJournalMismatch),
               "journal_mismatch");
}

// ---------------------------------------------------------------------------
// try_parallel_for: every failing index captured, no healthy item skipped

TEST(TryParallelFor, CapturesEveryFailingIndexAtAnyThreadCount) {
  constexpr std::size_t kN = 16;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<char> ran(kN, 0);
    const std::vector<IndexedError> errors = try_parallel_for(
        threads, kN, /*chunk=*/2,
        [&](std::size_t i) {
          ran[i] = 1;
          if (i == 3) {
            throw FlowException(
                FlowError{FaultCode::kNonFinite, i, "test.site", "boom"});
          }
          if (i == 7) throw std::runtime_error("plain");
          if (i == 11) throw std::bad_alloc();
        },
        "test.loop");

    // A plain parallel_for would abort item 3's chunk and rethrow one
    // error; here all 16 items ran and all three failures are reported.
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(ran[i], 1) << i;
    ASSERT_EQ(errors.size(), 3u) << "threads=" << threads;
    EXPECT_EQ(errors[0].index, 3u);
    EXPECT_EQ(errors[0].error.code, FaultCode::kNonFinite);
    EXPECT_EQ(errors[0].error.origin, "test.site");
    EXPECT_EQ(errors[1].index, 7u);
    EXPECT_EQ(errors[1].error.code, FaultCode::kUnknown);
    EXPECT_EQ(errors[1].error.origin, "test.loop");
    EXPECT_EQ(errors[1].error.window, 7u);
    EXPECT_EQ(errors[2].index, 11u);
    EXPECT_EQ(errors[2].error.code, FaultCode::kAllocFailure);
  }
}

// ---------------------------------------------------------------------------
// Fault injector unit tests

TEST(FaultInjector, DisabledAndUnscopedProbesStayInert) {
  // Default state: no plan installed.
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should(fault::Kind::kNanPixel));

  fault::Config cfg;
  cfg.enabled = true;
  cfg.rate = 1.0;  // would fault every scoped probe
  ScopedFault plan(cfg);
  // No Scope on this thread -> Domain::kNone -> never faults.
  EXPECT_FALSE(fault::should(fault::Kind::kNanPixel));
  {
    fault::Scope scope(fault::Domain::kScan, 1);
    EXPECT_TRUE(fault::should(fault::Kind::kNanPixel));
  }
  // Scope restored: inert again.
  EXPECT_FALSE(fault::should(fault::Kind::kNanPixel));
}

TEST(FaultInjector, ExplicitTargetsSelectExactTriples) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back({fault::Kind::kNanPixel, fault::Domain::kExtract, 5});
  ScopedFault plan(cfg);

  {
    fault::Scope scope(fault::Domain::kExtract, 5);
    EXPECT_TRUE(fault::should(fault::Kind::kNanPixel));
    EXPECT_FALSE(fault::should(fault::Kind::kAlloc));  // wrong kind
  }
  {
    fault::Scope scope(fault::Domain::kExtract, 6);  // wrong index
    EXPECT_FALSE(fault::should(fault::Kind::kNanPixel));
  }
  {
    fault::Scope scope(fault::Domain::kOpc, 5);  // wrong domain
    EXPECT_FALSE(fault::should(fault::Kind::kNanPixel));
  }
}

TEST(FaultInjector, TransientFiresOnlyOnFirstProbe) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.transient = true;
  cfg.targets.push_back({fault::Kind::kAlloc, fault::Domain::kExtract, 3});
  ScopedFault plan(cfg);

  fault::Scope scope(fault::Domain::kExtract, 3);
  EXPECT_TRUE(fault::should(fault::Kind::kAlloc));
  EXPECT_FALSE(fault::should(fault::Kind::kAlloc));  // retry succeeds
  const auto trig = fault::triggered();
  ASSERT_EQ(trig.size(), 1u);
  EXPECT_EQ(trig[0].kind, fault::Kind::kAlloc);
  EXPECT_EQ(trig[0].domain, fault::Domain::kExtract);
  EXPECT_EQ(trig[0].index, 3u);
}

TEST(FaultInjector, MaybeThrowMapsKindsToExceptions) {
  fault::Config cfg;
  cfg.enabled = true;
  for (const fault::Kind k :
       {fault::Kind::kConvergenceStall, fault::Kind::kCacheInsert,
        fault::Kind::kAlloc}) {
    cfg.targets.push_back({k, fault::Domain::kScan, 5});
  }
  ScopedFault plan(cfg);
  fault::Scope scope(fault::Domain::kScan, 5);

  try {
    fault::maybe_throw(fault::Kind::kConvergenceStall);
    FAIL() << "expected FlowException";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.error().code, FaultCode::kNonConvergence);
    EXPECT_EQ(e.error().origin, "fault.injected");
  }
  EXPECT_THROW(fault::maybe_throw(fault::Kind::kCacheInsert), std::bad_alloc);
  EXPECT_THROW(fault::maybe_throw(fault::Kind::kAlloc), std::bad_alloc);
  // Not targeted: no throw.
  fault::maybe_throw(fault::Kind::kNanPixel);
}

TEST(FaultInjector, RateSelectionIsIdenticalAtOneAndFourThreads) {
  // The rate draw is a pure hash of (seed, kind, domain, index): probing
  // 512 indices concurrently must light up exactly the same set as probing
  // them serially.
  constexpr std::size_t kN = 512;
  fault::Config cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.rate = 0.05;

  std::vector<char> fired_serial(kN, 0), fired_parallel(kN, 0);
  std::vector<fault::Triggered> trig_serial, trig_parallel;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedFault plan(cfg);
    std::vector<char>& fired = threads == 1 ? fired_serial : fired_parallel;
    parallel_for(threads, kN, /*chunk=*/8, [&](std::size_t i) {
      fault::Scope scope(fault::Domain::kScan, i);
      fired[i] = fault::should(fault::Kind::kNanPixel) ? 1 : 0;
    });
    (threads == 1 ? trig_serial : trig_parallel) = fault::triggered();
  }

  std::size_t hits = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(fired_serial[i], fired_parallel[i]) << "index " << i;
    hits += fired_serial[i];
  }
  EXPECT_GT(hits, 0u);   // 5 % of 512 should select something...
  EXPECT_LT(hits, kN);   // ...but nowhere near everything
  ASSERT_EQ(trig_serial.size(), trig_parallel.size());
  for (std::size_t i = 0; i < trig_serial.size(); ++i) {
    EXPECT_EQ(trig_serial[i].kind, trig_parallel[i].kind);
    EXPECT_EQ(trig_serial[i].domain, trig_parallel[i].domain);
    EXPECT_EQ(trig_serial[i].index, trig_parallel[i].index);
  }
}

// ---------------------------------------------------------------------------
// Flow-level containment: retry, degrade, FlowHealth

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

/// Cache off by default: fault-injection tests must know exactly which
/// probe sites run (a cache hit skips the simulator and its probes).
FlowOptions fault_flow_options(std::size_t threads, bool cache = false) {
  FlowOptions opts;
  opts.sta.clock_period = 90.0;
  opts.threads = threads;
  opts.cache.enabled = cache;
  return opts;
}

void expect_same_devices(const GateExtraction& a, const GateExtraction& b) {
  EXPECT_EQ(a.gate, b.gate);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    const DeviceCd& da = a.devices[d];
    const DeviceCd& db = b.devices[d];
    EXPECT_EQ(da.device, db.device);
    ASSERT_EQ(da.profile.slice_cd_nm.size(), db.profile.slice_cd_nm.size());
    for (std::size_t s = 0; s < da.profile.slice_cd_nm.size(); ++s) {
      EXPECT_EQ(da.profile.slice_cd_nm[s], db.profile.slice_cd_nm[s]);
    }
    EXPECT_EQ(da.eq.ion_ua, db.eq.ion_ua);
    EXPECT_EQ(da.eq.ioff_ua, db.eq.ioff_ua);
    EXPECT_EQ(da.eq.l_eff_drive_nm, db.eq.l_eff_drive_nm);
    EXPECT_EQ(da.eq.functional, db.eq.functional);
  }
}

class FaultFlowFixture : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }

  static const PlacedDesign& design() {
    static PlacedDesign d = place_and_route(make_c17(), lib());
    return d;
  }

  /// Fault-free serial reference flow (cache off), OPC already run.
  static PostOpcFlow& reference() {
    static auto ref = [] {
      auto f = std::make_unique<PostOpcFlow>(design(), lib(), LithoSimulator{},
                                             fault_flow_options(1));
      f->run_opc(OpcMode::kModelBased);
      return f;
    }();
    return *ref;
  }

  static const std::vector<GateExtraction>& reference_extraction() {
    static const std::vector<GateExtraction> e = reference().extract({});
    return e;
  }
};

TEST_F(FaultFlowFixture, StickyExtractFaultsDegradeExactlyThoseGates) {
  // The acceptance scenario: sticky faults in k=2 extraction windows leave
  // the run alive with exactly those k gates on drawn-CD timing, every
  // other gate bit-identical to the fault-free run, at 1 and 4 threads.
  const std::vector<GateIdx> victims{1, 4};
  fault::Config cfg;
  cfg.enabled = true;
  for (const GateIdx g : victims) {
    cfg.targets.push_back({fault::Kind::kAlloc, fault::Domain::kExtract, g});
  }

  TimingComparison cmp[2];
  for (int t = 0; t < 2; ++t) {
    const std::size_t threads = t == 0 ? 1 : 4;
    ScopedFault plan(cfg);
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     fault_flow_options(threads));
    flow.run_opc(OpcMode::kModelBased);
    EXPECT_TRUE(flow.health().clean()) << "OPC phase must not fault";

    const std::vector<GateExtraction> ext = flow.extract({});
    const std::vector<GateExtraction>& ref = reference_extraction();
    ASSERT_EQ(ext.size(), ref.size());
    for (std::size_t g = 0; g < ext.size(); ++g) {
      if (g == victims[0] || g == victims[1]) {
        // Degraded slot: gate id kept (annotation stays aligned), no CDs.
        EXPECT_EQ(ext[g].gate, g);
        EXPECT_TRUE(ext[g].devices.empty());
      } else {
        expect_same_devices(ext[g], ref[g]);
      }
    }

    // Healthy gates' annotations are bit-identical; degraded gates fall
    // back to drawn-CD timing (identity scales).
    const std::vector<DelayAnnotation> ann = flow.annotate(ext);
    const std::vector<DelayAnnotation> ann_ref =
        reference().annotate(reference_extraction());
    ASSERT_EQ(ann.size(), ann_ref.size());
    for (std::size_t g = 0; g < ann.size(); ++g) {
      if (g == victims[0] || g == victims[1]) {
        EXPECT_EQ(ann[g].fall_scale, 1.0);
        EXPECT_EQ(ann[g].rise_scale, 1.0);
        EXPECT_EQ(ann[g].leak_scale, 1.0);
      } else {
        EXPECT_EQ(ann[g].fall_scale, ann_ref[g].fall_scale);
        EXPECT_EQ(ann[g].rise_scale, ann_ref[g].rise_scale);
        EXPECT_EQ(ann[g].leak_scale, ann_ref[g].leak_scale);
      }
    }

    flow.reset_health();
    cmp[t] = flow.compare_timing();
    const FlowHealth& h = cmp[t].health;
    EXPECT_EQ(h.degraded_gates, victims);
    EXPECT_EQ(h.degraded_windows, victims.size());
    EXPECT_EQ(h.recovered_windows, 0u);
    ASSERT_EQ(h.faults.size(), victims.size());
    for (std::size_t f = 0; f < h.faults.size(); ++f) {
      EXPECT_EQ(h.faults[f].phase, "extract");
      EXPECT_EQ(h.faults[f].index, victims[f]);
      EXPECT_EQ(h.faults[f].code, FaultCode::kAllocFailure);
      EXPECT_EQ(h.faults[f].attempts, 2u);  // nominal + 1 escalated retry
      EXPECT_TRUE(h.faults[f].degraded);
      EXPECT_FALSE(h.faults[f].recovered);
    }
  }
  // Thread count is still a pure performance knob under injected faults.
  EXPECT_EQ(cmp[0].drawn.worst_slack, cmp[1].drawn.worst_slack);
  EXPECT_EQ(cmp[0].annotated.worst_slack, cmp[1].annotated.worst_slack);
  EXPECT_EQ(cmp[0].worst_slack_change_pct, cmp[1].worst_slack_change_pct);
  EXPECT_EQ(cmp[0].annotated.total_leakage_ua,
            cmp[1].annotated.total_leakage_ua);
}

TEST_F(FaultFlowFixture, TransientFaultRecoversOnRetryWithoutDegradation) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.transient = true;
  cfg.targets.push_back({fault::Kind::kAlloc, fault::Domain::kExtract, 2});

  std::vector<GateExtraction> runs[2];
  for (int t = 0; t < 2; ++t) {
    const std::size_t threads = t == 0 ? 1 : 4;
    ScopedFault plan(cfg);  // fresh plan: transient bookkeeping cleared
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     fault_flow_options(threads));
    flow.run_opc(OpcMode::kModelBased);
    runs[t] = flow.extract({});

    const FlowHealth h = flow.health();
    ASSERT_EQ(h.faults.size(), 1u);
    EXPECT_EQ(h.faults[0].phase, "extract");
    EXPECT_EQ(h.faults[0].index, 2u);
    EXPECT_TRUE(h.faults[0].recovered);
    EXPECT_FALSE(h.faults[0].degraded);
    EXPECT_EQ(h.faults[0].attempts, 2u);
    EXPECT_EQ(h.retries, 1u);
    EXPECT_EQ(h.recovered_windows, 1u);
    EXPECT_EQ(h.degraded_windows, 0u);
    EXPECT_TRUE(h.degraded_gates.empty());
    // The recovered gate has a real extraction (from the escalated retry).
    EXPECT_FALSE(runs[t][2].devices.empty());
  }
  // The escalated-retry result is itself deterministic across threads.
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t g = 0; g < runs[0].size(); ++g) {
    expect_same_devices(runs[0][g], runs[1][g]);
  }
}

TEST_F(FaultFlowFixture, OpcStickyStallFallsBackToDrawnMask) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kConvergenceStall, fault::Domain::kOpc, 0});
  ScopedFault plan(cfg);

  PostOpcFlow flow(design(), lib(), LithoSimulator{}, fault_flow_options(1));
  flow.run_opc(OpcMode::kModelBased);

  FlowHealth h = flow.health();
  ASSERT_EQ(h.faults.size(), 1u);
  EXPECT_EQ(h.faults[0].phase, "opc");
  EXPECT_EQ(h.faults[0].index, 0u);
  EXPECT_EQ(h.faults[0].code, FaultCode::kNonConvergence);
  EXPECT_TRUE(h.faults[0].degraded);
  EXPECT_EQ(h.faults[0].attempts, 2u);
  // Drawn-mask fallback: the window still has a printable mask.
  EXPECT_FALSE(flow.mask_for_instance(0).empty());

  // A degraded OPC window must never feed its (uncorrected) CDs into STA:
  // every gate on that instance is excluded from extraction and lands on
  // the drawn-CD annotation.
  const std::vector<GateExtraction> ext = flow.extract({});
  h = flow.health();
  ASSERT_FALSE(h.degraded_gates.empty());
  for (const GateIdx g : h.degraded_gates) {
    EXPECT_EQ(design().gate_to_instance[g], 0u);
    EXPECT_TRUE(ext[g].devices.empty());
    EXPECT_EQ(ext[g].gate, g);
  }
  for (std::size_t g = 0; g < ext.size(); ++g) {
    if (design().gate_to_instance[g] == 0) {
      EXPECT_TRUE(std::find(h.degraded_gates.begin(), h.degraded_gates.end(),
                            g) != h.degraded_gates.end());
    } else {
      EXPECT_FALSE(ext[g].devices.empty());
    }
  }

  // The headline comparison still completes and reports the degradation.
  const TimingComparison cmp = flow.compare_timing();
  EXPECT_FALSE(cmp.health.clean());
  EXPECT_FALSE(cmp.health.degraded_gates.empty());
}

TEST_F(FaultFlowFixture, NanPixelRaisesStructuredNonFiniteFault) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back({fault::Kind::kNanPixel, fault::Domain::kExtract, 0});
  ScopedFault plan(cfg);

  PostOpcFlow flow(design(), lib(), LithoSimulator{}, fault_flow_options(1));
  flow.run_opc(OpcMode::kModelBased);
  const std::vector<GateExtraction> ext = flow.extract({});

  const FlowHealth h = flow.health();
  ASSERT_EQ(h.faults.size(), 1u);
  // The NaN is injected as data corruption; the isfinite guard at the
  // image boundary is what turns it into a structured fault.
  EXPECT_EQ(h.faults[0].code, FaultCode::kNonFinite);
  EXPECT_EQ(h.faults[0].origin, "litho.latent");
  EXPECT_TRUE(h.faults[0].degraded);
  EXPECT_EQ(h.degraded_gates, std::vector<GateIdx>{0});
  EXPECT_TRUE(ext[0].devices.empty());
}

TEST_F(FaultFlowFixture, DisabledRecoveryRestoresFailFast) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back({fault::Kind::kAlloc, fault::Domain::kExtract, 1});
  ScopedFault plan(cfg);

  FlowOptions opts = fault_flow_options(1);
  opts.recovery.enabled = false;
  PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
  flow.run_opc(OpcMode::kModelBased);
  EXPECT_THROW(flow.extract({}), std::bad_alloc);
}

// ---------------------------------------------------------------------------
// I/O fault domains: wildcard targets + the vfs shim

TEST(FaultInjector, AnyIndexWildcardMatchesEveryScopedIndex) {
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kIoEnospc, fault::Domain::kJournalIo, fault::kAnyIndex});
  ScopedFault plan(cfg);

  // "The disk is full": every index under the domain faults...
  for (const std::uint64_t index : {0ull, 1ull, 17ull, 123456789ull}) {
    fault::Scope scope(fault::Domain::kJournalIo, index);
    EXPECT_TRUE(fault::should(fault::Kind::kIoEnospc)) << index;
  }
  // ...but only that domain, and only that kind.
  {
    fault::Scope scope(fault::Domain::kDiskCacheIo, 0);
    EXPECT_FALSE(fault::should(fault::Kind::kIoEnospc));
  }
  {
    fault::Scope scope(fault::Domain::kJournalIo, 0);
    EXPECT_FALSE(fault::should(fault::Kind::kIoEio));
  }
  // No Scope: probes stay inert even against a wildcard.
  EXPECT_FALSE(fault::should(fault::Kind::kIoEnospc));
}

TEST(VfsShim, InjectsErrnoFailuresInsideScopeOnly) {
  const fs::path path = fs::temp_directory_path() / "poc_vfs_fault_probe";
  fs::remove(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const char payload[] = "0123456789";

  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kIoEnospc, fault::Domain::kJournalIo, fault::kAnyIndex});
  cfg.targets.push_back(
      {fault::Kind::kIoEio, fault::Domain::kDiskCacheIo, fault::kAnyIndex});
  ScopedFault plan(cfg);

  {
    fault::Scope scope(fault::Domain::kJournalIo, 0);
    errno = 0;
    EXPECT_EQ(vfs::write(fd, payload, sizeof payload), -1);
    EXPECT_EQ(errno, ENOSPC);
  }
  {
    fault::Scope scope(fault::Domain::kDiskCacheIo, 3);
    errno = 0;
    EXPECT_EQ(vfs::fsync(fd), -1);
    EXPECT_EQ(errno, EIO);
  }
  // Outside any scope the shim is a pass-through.
  EXPECT_EQ(vfs::write(fd, payload, sizeof payload),
            static_cast<ssize_t>(sizeof payload));
  EXPECT_EQ(vfs::fsync(fd), 0);
  ::close(fd);
  fs::remove(path);
}

TEST(VfsShim, StickyShortWritesStillCompleteWriteAll) {
  const fs::path path = fs::temp_directory_path() / "poc_vfs_short_write";
  fs::remove(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);

  fault::Config cfg;
  cfg.enabled = true;  // sticky: every write is short
  cfg.targets.push_back({fault::Kind::kIoShortWrite, fault::Domain::kJournalIo,
                         fault::kAnyIndex});
  ScopedFault plan(cfg);

  std::vector<std::uint8_t> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  {
    fault::Scope scope(fault::Domain::kJournalIo, 0);
    // Each injected call accepts only half the remainder, but always at
    // least one byte — so the retry loop terminates with the full buffer.
    EXPECT_TRUE(vfs::write_all(fd, payload.data(), payload.size()));
  }
  ::close(fd);
  ASSERT_EQ(fs::file_size(path), payload.size());
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> got((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  EXPECT_EQ(got, payload);
  fs::remove(path);
}

}  // namespace
}  // namespace poc
