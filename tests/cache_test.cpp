// Content-addressed window cache tests (src/cache + the flow wiring).  The
// cache contract extends the determinism contract: turning the cache on or
// off — or shrinking it until it evicts or rejects everything — may only
// change wall time, never a single output bit, at any thread count.
// EXPECT_EQ on doubles below is deliberate, as in determinism_test.
#include <chrono>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/disk_store.h"
#include "src/cache/fingerprint.h"
#include "src/cache/result_cache.h"
#include "src/common/fault.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"

namespace poc {
namespace {

// ---------------------------------------------------------------------------
// Fingerprint unit tests

TEST(Fingerprint, TranslatedGeometryHashesAlike) {
  const std::vector<Rect> rects{{10, 20, 110, 70}, {200, 20, 260, 300}};
  const Point shift{5000, -3000};
  std::vector<Rect> moved;
  for (const Rect& r : rects) moved.push_back(r.translated(shift));

  FpHasher a;
  a.rects(rects, Point{0, 0});
  FpHasher b;
  b.rects(moved, shift);
  EXPECT_EQ(a.digest(), b.digest());

  // Same rects, different local position -> different key.
  FpHasher c;
  c.rects(moved, Point{0, 0});
  EXPECT_FALSE(a.digest() == c.digest());
}

TEST(Fingerprint, SensitiveToValuesAndOrder) {
  FpHasher a;
  a.f64(1.0).f64(2.0);
  FpHasher b;
  b.f64(2.0).f64(1.0);
  EXPECT_FALSE(a.digest() == b.digest());

  FpHasher c;
  c.f64(0.0);
  FpHasher d;
  d.f64(-0.0);  // distinct IEEE bit patterns must key separately
  EXPECT_FALSE(c.digest() == d.digest());

  FpHasher e;
  e.str("opc");
  FpHasher f;
  f.str("orc");
  EXPECT_FALSE(e.digest() == f.digest());
}

// ---------------------------------------------------------------------------
// ShardedCache unit tests

Fingerprint key(std::uint64_t i) {
  FpHasher h;
  h.u64(i);
  return h.digest();
}

TEST(ShardedCache, InsertFindAndCounters) {
  ShardedCache<int> cache(/*capacity_bytes=*/1024, /*shards=*/4);
  EXPECT_EQ(cache.find(key(1)), nullptr);
  cache.insert(key(1), std::make_shared<int>(42), 8);
  const auto hit = cache.find(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.bytes, 8u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(ShardedCache, FirstInsertWins) {
  ShardedCache<int> cache(1024, 1);
  cache.insert(key(7), std::make_shared<int>(1), 8);
  cache.insert(key(7), std::make_shared<int>(2), 8);
  EXPECT_EQ(*cache.find(key(7)), 1);
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(ShardedCache, EvictsLeastRecentlyUsed) {
  // One shard, room for three unit-cost entries.
  ShardedCache<int> cache(/*capacity_bytes=*/3, /*shards=*/1);
  cache.insert(key(1), std::make_shared<int>(1), 1);
  cache.insert(key(2), std::make_shared<int>(2), 1);
  cache.insert(key(3), std::make_shared<int>(3), 1);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.find(key(1)), nullptr);
  cache.insert(key(4), std::make_shared<int>(4), 1);

  EXPECT_NE(cache.find(key(1)), nullptr);
  EXPECT_EQ(cache.find(key(2)), nullptr);
  EXPECT_NE(cache.find(key(3)), nullptr);
  EXPECT_NE(cache.find(key(4)), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.counters().entries, 3u);
}

TEST(ShardedCache, HitKeepsValueAliveAcrossEviction) {
  ShardedCache<std::vector<int>> cache(2, 1);
  cache.insert(key(1), std::make_shared<std::vector<int>>(3, 11), 1);
  const auto held = cache.find(key(1));
  ASSERT_NE(held, nullptr);
  cache.insert(key(2), std::make_shared<std::vector<int>>(3, 22), 1);
  cache.insert(key(3), std::make_shared<std::vector<int>>(3, 33), 1);
  EXPECT_EQ(cache.find(key(1)), nullptr);  // evicted...
  EXPECT_EQ((*held)[0], 11);               // ...but the hit's copy survives
}

TEST(ShardedCache, CapacityZeroRejectsEverything) {
  ShardedCache<int> cache(0, 4);
  cache.insert(key(1), std::make_shared<int>(1), 1);
  EXPECT_EQ(cache.find(key(1)), nullptr);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.insertions, 0u);
  EXPECT_EQ(c.entries, 0u);
}

TEST(ShardedCache, ConcurrentMixedAccessIsSafe) {
  // Contended find/insert over a small key space; run under TSan via
  // scripts/check.sh.  Values carry a payload so a use-after-free would
  // surface as a data race or garbage read.
  ShardedCache<std::vector<int>> cache(/*capacity_bytes=*/256, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr std::uint64_t kKeys = 64;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t k =
            (static_cast<std::uint64_t>(t) * 2654435761u + op) % kKeys;
        if (const auto hit = cache.find(key(k))) {
          ASSERT_EQ(hit->size(), 4u);
          EXPECT_EQ((*hit)[0], static_cast<int>(k));
        } else {
          cache.insert(key(k),
                       std::make_shared<std::vector<int>>(4, static_cast<int>(k)),
                       /*cost_bytes=*/8);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(c.bytes, 256u);
}

// ---------------------------------------------------------------------------
// Disk tier: the spill-to-disk store shared across worker processes

struct CacheTempDir {
  std::filesystem::path path;
  explicit CacheTempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~CacheTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<std::uint8_t> encode_int(const int& v) {
  std::vector<std::uint8_t> bytes(sizeof v);
  std::memcpy(bytes.data(), &v, sizeof v);
  return bytes;
}

std::shared_ptr<int> decode_int(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != sizeof(int)) return nullptr;  // structural mismatch
  int v;
  std::memcpy(&v, bytes.data(), sizeof v);
  return std::make_shared<int>(v);
}

TEST(ShardedCacheDisk, SpillsOnInsertAndServesAFreshInstance) {
  CacheTempDir dir("poc_cache_disk_roundtrip");
  const auto store = std::make_shared<DiskCacheStore>(dir.path.string());
  ASSERT_TRUE(store->ok());

  // Instance A (worker 0) computes and inserts: write-through spill.
  ShardedCache<int> a(1 << 12, 4);
  a.attach_disk(store, encode_int, decode_int);
  a.insert(key(1), std::make_shared<int>(41), 8);
  EXPECT_TRUE(store->contains(key(1)));

  // Instance B (worker 1, fresh memory) finds it on disk: a disk hit that
  // promotes into memory, so the second find is a plain memory hit.
  ShardedCache<int> b(1 << 12, 4);
  b.attach_disk(std::make_shared<DiskCacheStore>(dir.path.string()),
                encode_int, decode_int);
  const auto first = b.find(key(1));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(*first, 41);
  ASSERT_NE(b.find(key(1)), nullptr);
  const CacheCounters c = b.counters();
  EXPECT_EQ(c.disk_hits, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 1.0);  // disk hits count as hits

  // Structurally invalid published bytes (wrong size for the codec) must
  // read as a miss — the caller recomputes, never consumes garbage.
  const std::uint8_t junk[3] = {1, 2, 3};
  store->put(key(2), junk, sizeof junk);
  EXPECT_EQ(b.find(key(2)), nullptr);
  EXPECT_EQ(b.counters().misses, 1u);
}

TEST(ShardedCacheDisk, PeekPromotesFromDiskWithoutCounters) {
  CacheTempDir dir("poc_cache_disk_peek");
  const auto store = std::make_shared<DiskCacheStore>(dir.path.string());
  {
    ShardedCache<int> seed(1 << 12, 1);
    seed.attach_disk(store, encode_int, decode_int);
    seed.insert(key(9), std::make_shared<int>(99), 8);
  }
  ShardedCache<int> cache(1 << 12, 1);
  cache.attach_disk(store, encode_int, decode_int);
  const auto peeked = cache.peek(key(9));
  ASSERT_NE(peeked, nullptr);
  EXPECT_EQ(*peeked, 99);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits + c.disk_hits + c.misses, 0u)
      << "peek must not perturb lookup counters";
}

TEST(ShardedCacheDisk, CounterIdentityIsExactUnderConcurrentLookups) {
  // The satellite contract: with the disk tier attached, every find()
  // increments exactly one of hits / disk_hits / misses, so under any
  // interleaving the three sum to the exact number of lookups.
  CacheTempDir dir("poc_cache_disk_identity");
  const auto store = std::make_shared<DiskCacheStore>(dir.path.string());
  constexpr std::uint64_t kOnDisk = 32;  // keys [0, 32) pre-published
  constexpr std::uint64_t kKeys = 64;    // keys [32, 64) exist nowhere
  for (std::uint64_t k = 0; k < kOnDisk; ++k) {
    const std::vector<std::uint8_t> bytes = encode_int(static_cast<int>(k));
    store->put(key(k), bytes.data(), bytes.size());
  }

  ShardedCache<int> cache(1 << 16, 4);
  cache.attach_disk(store, encode_int, decode_int);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t k =
            (static_cast<std::uint64_t>(t) * 2654435761u + op) % kKeys;
        const auto hit = cache.find(key(k));
        if (k < kOnDisk) {
          ASSERT_NE(hit, nullptr);
          EXPECT_EQ(*hit, static_cast<int>(k));
        } else {
          EXPECT_EQ(hit, nullptr);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits + c.disk_hits + c.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_GT(c.disk_hits, 0u) << "first touch of each disk key";
  EXPECT_GT(c.hits, 0u) << "promoted entries serve from memory";
  // Exactly the lookups of absent keys miss; lookups of published keys
  // never do (they land as disk hits or, once promoted, memory hits).
  std::uint64_t absent_lookups = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int op = 0; op < kOps; ++op) {
      const std::uint64_t k =
          (static_cast<std::uint64_t>(t) * 2654435761u + op) % kKeys;
      if (k >= kOnDisk) ++absent_lookups;
    }
  }
  EXPECT_EQ(c.misses, absent_lookups);
}

// ---------------------------------------------------------------------------
// Flow-level: cache on vs off must be bit-identical

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

FlowOptions flow_options(std::size_t threads, bool cache_enabled,
                         std::size_t capacity_mb = 256) {
  FlowOptions opts;
  opts.sta.clock_period = 90.0;
  opts.threads = threads;
  opts.cache.enabled = cache_enabled;
  opts.cache.capacity_mb = capacity_mb;
  return opts;
}

void expect_same_extraction(const std::vector<GateExtraction>& a,
                            const std::vector<GateExtraction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].gate, b[g].gate);
    ASSERT_EQ(a[g].devices.size(), b[g].devices.size());
    for (std::size_t d = 0; d < a[g].devices.size(); ++d) {
      const DeviceCd& da = a[g].devices[d];
      const DeviceCd& db = b[g].devices[d];
      ASSERT_EQ(da.profile.slice_cd_nm.size(), db.profile.slice_cd_nm.size());
      for (std::size_t s = 0; s < da.profile.slice_cd_nm.size(); ++s) {
        EXPECT_EQ(da.profile.slice_cd_nm[s], db.profile.slice_cd_nm[s])
            << "gate " << g << " dev " << d << " slice " << s;
      }
      EXPECT_EQ(da.eq.ion_ua, db.eq.ion_ua);
      EXPECT_EQ(da.eq.ioff_ua, db.eq.ioff_ua);
      EXPECT_EQ(da.eq.l_eff_drive_nm, db.eq.l_eff_drive_nm);
      EXPECT_EQ(da.eq.functional, db.eq.functional);
    }
  }
}

void expect_same_masks(const PostOpcFlow& a, const PostOpcFlow& b,
                       std::size_t instances) {
  EXPECT_EQ(a.opc_stats().fragments, b.opc_stats().fragments);
  EXPECT_EQ(a.opc_stats().iterations, b.opc_stats().iterations);
  EXPECT_EQ(a.opc_stats().max_abs_epe_nm, b.opc_stats().max_abs_epe_nm);
  EXPECT_EQ(a.opc_stats().rms_epe_sum, b.opc_stats().rms_epe_sum);
  for (std::size_t i = 0; i < instances; ++i) {
    const std::vector<Rect>& ma = a.mask_for_instance(i);
    const std::vector<Rect>& mb = b.mask_for_instance(i);
    ASSERT_EQ(ma.size(), mb.size()) << "instance " << i;
    for (std::size_t r = 0; r < ma.size(); ++r) {
      EXPECT_EQ(ma[r], mb[r]) << "instance " << i << " rect " << r;
    }
  }
}

/// Flows over the same design with the cache on and off, serial and
/// 4-thread, OPC already run: every product must match bit for bit.
class CacheFlowFixture : public ::testing::Test {
 protected:
  static const PlacedDesign& design() {
    static PlacedDesign d = place_and_route(make_c17(), lib());
    return d;
  }
  static PostOpcFlow& cached() { return *flows()[0]; }
  static PostOpcFlow& uncached() { return *flows()[1]; }
  static PostOpcFlow& cached_par() { return *flows()[2]; }

 private:
  static std::vector<std::unique_ptr<PostOpcFlow>>& flows() {
    static auto built = [] {
      std::vector<std::unique_ptr<PostOpcFlow>> f;
      f.push_back(std::make_unique<PostOpcFlow>(
          design(), lib(), LithoSimulator{}, flow_options(1, /*cache=*/true)));
      f.push_back(std::make_unique<PostOpcFlow>(
          design(), lib(), LithoSimulator{}, flow_options(1, /*cache=*/false)));
      f.push_back(std::make_unique<PostOpcFlow>(
          design(), lib(), LithoSimulator{}, flow_options(4, /*cache=*/true)));
      for (auto& flow : f) flow->run_opc(OpcMode::kModelBased);
      return f;
    }();
    return built;
  }
};

TEST_F(CacheFlowFixture, OpcMasksBitIdenticalCacheOnOff) {
  expect_same_masks(cached(), uncached(), design().layout.num_instances());
  expect_same_masks(cached_par(), uncached(), design().layout.num_instances());
}

TEST_F(CacheFlowFixture, ExtractionBitIdenticalCacheOnOff) {
  expect_same_extraction(cached().extract({}), uncached().extract({}));
  expect_same_extraction(cached().extract({120.0, 1.04}),
                         uncached().extract({120.0, 1.04}));
  expect_same_extraction(cached_par().extract({120.0, 1.04}),
                         uncached().extract({120.0, 1.04}));
}

TEST_F(CacheFlowFixture, TimingBitIdenticalCacheOnOff) {
  const TimingComparison a = cached().compare_timing();
  const TimingComparison b = uncached().compare_timing();
  EXPECT_EQ(a.drawn.worst_slack, b.drawn.worst_slack);
  EXPECT_EQ(a.annotated.worst_slack, b.annotated.worst_slack);
  EXPECT_EQ(a.annotated.total_leakage_ua, b.annotated.total_leakage_ua);
  EXPECT_EQ(a.worst_slack_change_pct, b.worst_slack_change_pct);
}

TEST_F(CacheFlowFixture, HotspotScanBitIdenticalCacheOnOff) {
  OrcOptions orc;
  orc.epe_limit_nm = 6.0;
  const std::vector<ProcessCorner> corners{{"nominal", {0.0, 1.0}},
                                           {"stress", {150.0, 1.08}}};
  const auto a = cached().scan_hotspots(corners, orc);
  const auto b = uncached().scan_hotspots(corners, orc);
  // Scan twice with the cache: the second pass replays entirely from it.
  const auto a2 = cached().scan_hotspots(corners, orc);
  for (const auto* r : {&a, &a2}) {
    EXPECT_EQ(r->windows_checked, b.windows_checked);
    EXPECT_EQ(r->pinches, b.pinches);
    EXPECT_EQ(r->bridges, b.bridges);
    EXPECT_EQ(r->epe_violations, b.epe_violations);
    ASSERT_EQ(r->hotspots.size(), b.hotspots.size());
    for (std::size_t h = 0; h < r->hotspots.size(); ++h) {
      EXPECT_EQ(r->hotspots[h].instance, b.hotspots[h].instance);
      EXPECT_EQ(r->hotspots[h].violation.where, b.hotspots[h].violation.where);
      EXPECT_EQ(r->hotspots[h].violation.value_nm,
                b.hotspots[h].violation.value_nm);
    }
  }
  EXPECT_GT(cached().cache_counters().orc.hits, 0u);
}

TEST_F(CacheFlowFixture, RepeatedExtractionHitsLatentCache) {
  const CacheCounters before = cached().cache_counters().latent;
  const auto first = cached().extract({30.0, 0.98});
  const auto again = cached().extract({30.0, 0.98});
  expect_same_extraction(first, again);
  const CacheCounters after = cached().cache_counters().latent;
  // The second pass must hit for every gate's window.
  EXPECT_GE(after.hits - before.hits, design().netlist.num_gates());
  EXPECT_GT(after.entries, 0u);
}

TEST_F(CacheFlowFixture, UncachedFlowReportsZeroCounters) {
  const auto c = uncached().cache_counters();
  EXPECT_EQ(c.total().hits + c.total().misses, 0u);
  EXPECT_EQ(c.total().entries, 0u);
}

TEST(CacheFlowCapacityZero, DegradedCacheStaysBitIdentical) {
  // capacity 0: every lookup misses, every insert is rejected — the flow
  // must behave exactly like cache-off.
  PlacedDesign design = place_and_route(make_c17(), lib());
  PostOpcFlow degraded(design, lib(), LithoSimulator{},
                       flow_options(4, /*cache=*/true, /*capacity_mb=*/0));
  PostOpcFlow off(design, lib(), LithoSimulator{},
                  flow_options(4, /*cache=*/false));
  degraded.run_opc(OpcMode::kRuleBased);
  off.run_opc(OpcMode::kRuleBased);
  expect_same_masks(degraded, off, design.layout.num_instances());
  expect_same_extraction(degraded.extract({}), off.extract({}));

  const auto c = degraded.cache_counters();
  EXPECT_EQ(c.total().hits, 0u);
  EXPECT_GT(c.total().misses, 0u);
  EXPECT_GT(c.total().rejected, 0u);
  EXPECT_EQ(c.total().entries, 0u);
}

TEST(CacheFlowFaults, EscalatedRetryNeverPoisonsNominalFingerprints) {
  // Containment hygiene: a retry attempt runs with escalated settings
  // (sign-off quality) and must bypass the cache entirely — if it stored
  // its result under the nominal fingerprint, every later nominal lookup
  // would replay escalated bits.  Inject a transient cache-insert fault on
  // one gate's extraction, let the retry recover, then extract again
  // fault-free: the cached flow must match a cache-off fault-free flow bit
  // for bit.
  PlacedDesign design = place_and_route(make_c17(), lib());
  PostOpcFlow cached(design, lib(), LithoSimulator{},
                     flow_options(1, /*cache=*/true));
  PostOpcFlow reference(design, lib(), LithoSimulator{},
                        flow_options(1, /*cache=*/false));
  cached.run_opc(OpcMode::kModelBased);
  reference.run_opc(OpcMode::kModelBased);

  // Target gate 0: with one thread it extracts first, so its latent-image
  // lookup always misses and reaches the insert (later gates may hit
  // entries shared with an identical window and never insert at all).
  fault::Config cfg;
  cfg.enabled = true;
  cfg.transient = true;
  cfg.targets.push_back({fault::Kind::kCacheInsert, fault::Domain::kExtract, 0});
  fault::configure(cfg);
  const auto faulted = cached.extract({});
  fault::reset();

  const FlowHealth h = cached.health();
  ASSERT_EQ(h.faults.size(), 1u);
  EXPECT_EQ(h.faults[0].code, FaultCode::kAllocFailure);
  EXPECT_TRUE(h.faults[0].recovered);
  EXPECT_TRUE(h.degraded_gates.empty());
  EXPECT_FALSE(faulted[0].devices.empty());  // escalated retry delivered

  // Fault-free re-extraction through the (possibly poisoned) cache must
  // equal the cache-off fault-free reference on every gate — including
  // gate 2, whose recovered-run result came from the escalated settings.
  expect_same_extraction(cached.extract({}), reference.extract({}));
}

TEST(CacheFlowBatch, BatchOfMissesKeepsCacheObservablesIdentical) {
  // The batched hot loops assemble a chunk by *peeking* the cache (no
  // counters, no LRU touch) and batch-compute only the misses; the
  // authoritative find + insert still run per index, in ascending order
  // within the chunk.  So a chunk full of identical cold windows — a batch
  // of misses — must behave exactly like the scalar loop: the first index
  // inserts, the rest hit or have their duplicate insert dropped
  // (first-insert-wins), and every counter the cache exposes matches the
  // unbatched run at one thread.
  PlacedDesign design = place_and_route(make_c17(), lib());
  const auto run = [&](std::size_t batch) {
    FlowOptions opts = flow_options(1, /*cache=*/true);
    opts.imaging.mode = ImagingMode::kSocs;
    opts.imaging.batch_windows = batch;
    auto flow =
        std::make_unique<PostOpcFlow>(design, lib(), LithoSimulator{}, opts);
    flow->run_opc(OpcMode::kModelBased);
    return flow;
  };
  const auto scalar = run(0);
  const auto batched = run(kBatchWindowsAuto);
  expect_same_masks(*scalar, *batched, design.layout.num_instances());
  expect_same_extraction(scalar->extract({}), batched->extract({}));
  const auto expect_same_counters = [](const CacheCounters& a,
                                       const CacheCounters& b,
                                       const char* which) {
    EXPECT_EQ(a.hits, b.hits) << which;
    EXPECT_EQ(a.misses, b.misses) << which;
    EXPECT_EQ(a.insertions, b.insertions) << which;
    EXPECT_EQ(a.rejected, b.rejected) << which;
    EXPECT_EQ(a.entries, b.entries) << which;
    EXPECT_EQ(a.bytes, b.bytes) << which;
  };
  expect_same_counters(scalar->cache_counters().opc,
                       batched->cache_counters().opc, "opc");
  expect_same_counters(scalar->cache_counters().latent,
                       batched->cache_counters().latent, "latent");
}

TEST(ShardedCache, PeekNeitherCountsNorTouchesLru) {
  // peek() is the batched loops' assembly probe: it must see exactly what
  // find() would, without perturbing any observable — counters or
  // eviction order.
  ShardedCache<int> cache(1 << 12);
  cache.insert(key(1), std::make_shared<int>(1), 1);
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_EQ(cache.peek(key(2)), nullptr);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);

  // LRU check: with capacity for 3 cost-1 entries, peeking entry 1 (unlike
  // finding it) must NOT protect it from being the eviction victim.
  ShardedCache<int> lru(3, /*shards=*/1);
  lru.insert(key(1), std::make_shared<int>(1), 1);
  lru.insert(key(2), std::make_shared<int>(2), 1);
  lru.insert(key(3), std::make_shared<int>(3), 1);
  EXPECT_NE(lru.peek(key(1)), nullptr);
  lru.insert(key(4), std::make_shared<int>(4), 1);
  EXPECT_EQ(lru.find(key(1)), nullptr) << "peek must not refresh LRU";
  EXPECT_NE(lru.find(key(4)), nullptr);
}

TEST(CacheFlowSocs, SocsFlowBitIdenticalCacheOnOffAndThreaded) {
  // SOCS-mode window results are memoized under fingerprints that include
  // the imaging mode and truncation knobs; a cached SOCS flow must replay
  // exactly what an uncached one computes, serial or threaded.
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions on = flow_options(1, /*cache=*/true);
  on.imaging.mode = ImagingMode::kSocs;
  FlowOptions off_opts = flow_options(1, /*cache=*/false);
  off_opts.imaging.mode = ImagingMode::kSocs;
  FlowOptions on_par = flow_options(4, /*cache=*/true);
  on_par.imaging.mode = ImagingMode::kSocs;

  PostOpcFlow cached(design, lib(), LithoSimulator{}, on);
  PostOpcFlow uncached(design, lib(), LithoSimulator{}, off_opts);
  PostOpcFlow cached_par(design, lib(), LithoSimulator{}, on_par);
  for (PostOpcFlow* f : {&cached, &uncached, &cached_par}) {
    f->run_opc(OpcMode::kModelBased);
  }
  expect_same_masks(cached, uncached, design.layout.num_instances());
  expect_same_masks(cached_par, uncached, design.layout.num_instances());
  expect_same_extraction(cached.extract({}), uncached.extract({}));
  expect_same_extraction(cached_par.extract({60.0, 1.02}),
                         uncached.extract({60.0, 1.02}));
  // Repeat extraction replays from the latent cache.
  const CacheCounters before = cached.cache_counters().latent;
  expect_same_extraction(cached.extract({}), uncached.extract({}));
  EXPECT_GT(cached.cache_counters().latent.hits, before.hits);
}

// ---------------------------------------------------------------------------
// Disk-store robustness: size quota and publish-I/O tier-down (PR 10)

std::size_t fs_dir_entry_count(const std::filesystem::path& dir) {
  std::size_t n = 0;
  std::error_code ec;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    ++n;
  }
  return n;
}

TEST(DiskCacheQuota, PrunesOldestEntriesPastTheQuota) {
  CacheTempDir dir("poc_cache_quota");
  DiskCacheStore::Options opts;
  // Each framed entry is 24 bytes of envelope + 100 bytes of payload = 124
  // bytes, so the third publish pushes past the quota by exactly one entry.
  opts.max_bytes = 300;
  DiskCacheStore store(dir.path.string(), opts);
  ASSERT_TRUE(store.ok());

  const std::vector<std::uint8_t> payload(100, 0xAB);
  const Fingerprint oldest = key(1);
  const Fingerprint middle = key(2);
  const Fingerprint newest = key(3);
  const auto backdate = [&](const Fingerprint& fp, int hours) {
    std::filesystem::last_write_time(
        store.entry_path(fp),
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(hours));
  };
  ASSERT_TRUE(store.put(oldest, payload.data(), payload.size()));
  backdate(oldest, 2);
  ASSERT_TRUE(store.put(middle, payload.data(), payload.size()));
  backdate(middle, 1);
  ASSERT_TRUE(store.put(newest, payload.data(), payload.size()));

  const DiskCacheStore::Counters c = store.counters();
  EXPECT_EQ(c.publishes, 3u);
  EXPECT_EQ(c.pruned_entries, 1u);
  EXPECT_EQ(c.pruned_bytes, 124u);
  EXPECT_FALSE(store.degraded()) << "pruning is policy, not failure";
  EXPECT_FALSE(store.contains(oldest)) << "oldest entry must be evicted";
  EXPECT_TRUE(store.contains(middle));
  EXPECT_TRUE(store.contains(newest))
      << "the entry that triggered the prune is never its victim";

  // A pruned entry is just a future recompute-and-republish.
  EXPECT_TRUE(store.put(oldest, payload.data(), payload.size()));
  EXPECT_TRUE(store.contains(oldest));
}

TEST(DiskCacheFaults, PublishEioTakesTheTierDownWithCountersFrozen) {
  CacheTempDir dir("poc_cache_eio");
  DiskCacheStore store(dir.path.string());
  ASSERT_TRUE(store.ok());

  const std::vector<std::uint8_t> payload(64, 0x5C);
  ASSERT_TRUE(store.put(key(1), payload.data(), payload.size()));

  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kIoEio, fault::Domain::kDiskCacheIo, fault::kAnyIndex});
  fault::configure(cfg);
  EXPECT_FALSE(store.put(key(2), payload.data(), payload.size()));
  fault::reset();

  EXPECT_TRUE(store.degraded());
  const DiskCacheStore::Counters after = store.counters();
  EXPECT_EQ(after.io_errors, 1u);
  EXPECT_EQ(after.publishes, 1u);

  // Tier down: every subsequent probe and publish short-circuits and the
  // counters freeze, so a degraded run's cache accounting is identical to a
  // run that never had a disk tier.
  EXPECT_FALSE(store.contains(key(1)));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(store.get(key(1), &out));
  EXPECT_FALSE(store.put(key(3), payload.data(), payload.size()));
  const DiskCacheStore::Counters frozen = store.counters();
  EXPECT_EQ(frozen.probes, after.probes);
  EXPECT_EQ(frozen.loads, after.loads);
  EXPECT_EQ(frozen.io_errors, 1u);
  EXPECT_EQ(frozen.publishes, 1u);
  EXPECT_EQ(fs_dir_entry_count(dir.path), 1u)
      << "no partial entry may survive a failed publish";
}

}  // namespace
}  // namespace poc
