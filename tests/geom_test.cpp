// Unit and property tests for the geometry kernel: rectangles, rectilinear
// polygons, Boolean-lite operations and the grid spatial index.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/geom/grid_index.h"
#include "src/geom/polygon.h"
#include "src/geom/polygon_ops.h"
#include "src/geom/rect.h"
#include "src/geom/transform.h"

namespace poc {
namespace {

TEST(Rect, BasicAccessors) {
  const Rect r{10, 20, 110, 50};
  EXPECT_EQ(r.width(), 100);
  EXPECT_EQ(r.height(), 30);
  EXPECT_DOUBLE_EQ(r.area(), 3000.0);
  EXPECT_EQ(r.center(), (Point{60, 35}));
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((Rect{5, 5, 5, 9}).empty());
}

TEST(Rect, FromCornersNormalizes) {
  const Rect r = Rect::from_corners({10, 30}, {-5, 2});
  EXPECT_EQ(r, (Rect{-5, 2, 10, 30}));
}

TEST(Rect, FromCenterOddSizes) {
  const Rect r = Rect::from_center({0, 0}, 110, 110);
  EXPECT_EQ(r.width(), 110);
  EXPECT_EQ(r.height(), 110);
}

TEST(Rect, ContainmentAndIntersection) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.contains(Point{0, 0}));
  EXPECT_TRUE(a.contains(Point{10, 10}));
  EXPECT_FALSE(a.contains(Point{11, 5}));
  EXPECT_TRUE(a.contains(Rect{2, 2, 8, 8}));
  const Rect b{10, 0, 20, 10};  // abutting
  EXPECT_FALSE(a.intersects(b));
  const Rect c{9, 9, 12, 12};
  EXPECT_TRUE(a.intersects(c));
  EXPECT_EQ(a.intersection(c), (Rect{9, 9, 10, 10}));
  EXPECT_EQ(a.bounding_union(b), (Rect{0, 0, 20, 10}));
  EXPECT_EQ(a.inflated(2), (Rect{-2, -2, 12, 12}));
  EXPECT_EQ(a.translated({5, -5}), (Rect{5, -5, 15, 5}));
}

TEST(Transform, AllOrientationsPreserveBoxSize) {
  const Rect r{0, 0, 30, 10};
  for (Orient o : {Orient::kR0, Orient::kR90, Orient::kR180, Orient::kR270,
                   Orient::kMX, Orient::kMY, Orient::kMXR90, Orient::kMYR90}) {
    const Transform t{o, {100, 200}};
    const Rect q = t.apply(r);
    EXPECT_TRUE(q.valid());
    const bool rotated = o == Orient::kR90 || o == Orient::kR270 ||
                         o == Orient::kMXR90 || o == Orient::kMYR90;
    EXPECT_EQ(q.width(), rotated ? 10 : 30);
    EXPECT_EQ(q.height(), rotated ? 30 : 10);
  }
}

TEST(Transform, MxMirrorsAboutXAxis) {
  const Transform t{Orient::kMX, {0, 100}};
  EXPECT_EQ(t.apply(Point{3, 7}), (Point{3, 93}));
}

TEST(Polygon, RectRoundTrip) {
  const Polygon p = Polygon::from_rect({0, 0, 40, 20});
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.area(), 800.0);
  EXPECT_DOUBLE_EQ(p.perimeter(), 120.0);
  EXPECT_EQ(p.bbox(), (Rect{0, 0, 40, 20}));
}

TEST(Polygon, ClockwiseInputNormalized) {
  const Polygon p({{0, 0}, {0, 10}, {10, 10}, {10, 0}});  // CW
  EXPECT_GT(p.area(), 0.0);
}

TEST(Polygon, CollinearVerticesMerged) {
  const Polygon p({{0, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_EQ(p.size(), 4u);
}

TEST(Polygon, NonManhattanRejected) {
  EXPECT_THROW(Polygon({{0, 0}, {10, 5}, {10, 10}, {0, 10}}), CheckError);
}

TEST(Polygon, EdgeOutwardNormals) {
  const Polygon p = Polygon::from_rect({0, 0, 10, 10});
  // CCW from (0,0): bottom, right, top, left.
  int south = 0, east = 0, north = 0, west = 0;
  for (const PolyEdge& e : p.edges()) {
    switch (e.outward) {
      case Dir::kSouth: ++south; break;
      case Dir::kEast: ++east; break;
      case Dir::kNorth: ++north; break;
      case Dir::kWest: ++west; break;
    }
  }
  EXPECT_EQ(south, 1);
  EXPECT_EQ(east, 1);
  EXPECT_EQ(north, 1);
  EXPECT_EQ(west, 1);
}

TEST(Polygon, ContainsInteriorBoundaryExterior) {
  // L-shape.
  const Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_TRUE(p.contains({5, 15}));
  EXPECT_FALSE(p.contains({15, 15}));  // notch
  EXPECT_TRUE(p.contains({0, 0}));     // corner
  EXPECT_TRUE(p.contains({20, 5}));    // edge
  EXPECT_FALSE(p.contains({21, 5}));
}

TEST(Polygon, UniformOutwardMoveInflatesRect) {
  const Polygon p = Polygon::from_rect({0, 0, 10, 10});
  const Polygon q = p.with_edge_moves({3, 3, 3, 3});
  EXPECT_EQ(q.bbox(), (Rect{-3, -3, 13, 13}));
  EXPECT_DOUBLE_EQ(q.area(), 256.0);
}

TEST(Polygon, InwardMoveShrinks) {
  const Polygon p = Polygon::from_rect({0, 0, 20, 20});
  const Polygon q = p.with_edge_moves({-2, -2, -2, -2});
  EXPECT_DOUBLE_EQ(q.area(), 256.0);
}

TEST(Polygon, DegenerateMoveThrows) {
  const Polygon p = Polygon::from_rect({0, 0, 10, 10});
  EXPECT_THROW(p.with_edge_moves({-6, -6, -6, -6}), CheckError);
}

TEST(Polygon, TranslatedShifts) {
  const Polygon p = Polygon::from_rect({0, 0, 10, 10});
  EXPECT_EQ(p.translated({5, 7}).bbox(), (Rect{5, 7, 15, 17}));
}

TEST(Decompose, SingleRect) {
  const auto rects = decompose(Polygon::from_rect({0, 0, 10, 10}));
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{0, 0, 10, 10}));
}

TEST(Decompose, LShapeAreaPreserved) {
  const Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  const auto rects = decompose(p);
  double area = 0.0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_DOUBLE_EQ(area, p.area());
  // Disjointness.
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].intersects(rects[j]));
    }
  }
}

TEST(Decompose, PlusShape) {
  // Plus/cross polygon, 12 vertices.
  const Polygon p({{10, 0}, {20, 0}, {20, 10}, {30, 10}, {30, 20},
                   {20, 20}, {20, 30}, {10, 30}, {10, 20}, {0, 20},
                   {0, 10}, {10, 10}});
  const auto rects = decompose(p);
  double area = 0.0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_DOUBLE_EQ(area, p.area());
  EXPECT_DOUBLE_EQ(area, 500.0);
}

/// Property: random rectilinear staircase polygons decompose exactly.
class DecomposeProperty : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeProperty, AreaAndContainmentPreserved) {
  Rng rng(GetParam());
  // Build a random staircase polygon: up the left side, down the right.
  std::vector<Point> verts;
  DbUnit x = 0;
  verts.push_back({0, 0});
  const int steps = 3 + static_cast<int>(rng.uniform_int(0, 4));
  DbUnit y = 0;
  for (int i = 0; i < steps; ++i) {
    x += rng.uniform_int(5, 30);
    verts.push_back({x, y});
    y += rng.uniform_int(5, 30);
    verts.push_back({x, y});
  }
  const DbUnit top = y;
  verts.push_back({0, top});
  const Polygon p(verts);
  const auto rects = decompose(p);
  double area = 0.0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_DOUBLE_EQ(area, p.area());
  // Random points agree on membership (away from boundaries).
  for (int i = 0; i < 50; ++i) {
    const Point pt{rng.uniform_int(1, x - 1), rng.uniform_int(1, top - 1)};
    bool in_rects = false;
    for (const Rect& r : rects) {
      if (pt.x > r.xlo && pt.x < r.xhi && pt.y > r.ylo && pt.y < r.yhi) {
        in_rects = true;
      }
    }
    const bool on_boundary = [&] {
      for (const PolyEdge& e : p.edges()) {
        if (e.axis == Axis::kHorizontal && pt.y == e.a.y) return true;
        if (e.axis == Axis::kVertical && pt.x == e.a.x) return true;
      }
      return false;
    }();
    if (!on_boundary) {
      EXPECT_EQ(in_rects, p.contains(pt)) << "at " << pt.x << "," << pt.y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeProperty, ::testing::Range(1, 21));

TEST(DisjointUnion, OverlappingPair) {
  const std::vector<Rect> rects{{0, 0, 10, 10}, {5, 5, 15, 15}};
  EXPECT_DOUBLE_EQ(union_area(rects), 175.0);  // 100 + 100 - 25
  const auto dis = disjoint_union(rects);
  for (std::size_t i = 0; i < dis.size(); ++i) {
    for (std::size_t j = i + 1; j < dis.size(); ++j) {
      EXPECT_FALSE(dis[i].intersects(dis[j]));
    }
  }
}

TEST(DisjointUnion, MergesAbuttingSlabs) {
  const std::vector<Rect> rects{{0, 0, 10, 5}, {0, 5, 10, 10}};
  const auto dis = disjoint_union(rects);
  ASSERT_EQ(dis.size(), 1u);
  EXPECT_EQ(dis[0], (Rect{0, 0, 10, 10}));
}

TEST(DisjointUnion, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(disjoint_union({}).empty());
  EXPECT_TRUE(disjoint_union({Rect{5, 5, 5, 10}}).empty());
}

class UnionProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnionProperty, AreaMatchesGridCount) {
  Rng rng(GetParam() * 77);
  std::vector<Rect> rects;
  const int n = 2 + GetParam() % 6;
  for (int i = 0; i < n; ++i) {
    const DbUnit x = rng.uniform_int(0, 40);
    const DbUnit y = rng.uniform_int(0, 40);
    rects.push_back({x, y, x + rng.uniform_int(1, 20), y + rng.uniform_int(1, 20)});
  }
  // Brute-force area on the unit grid.
  double brute = 0.0;
  for (DbUnit gx = 0; gx < 64; ++gx) {
    for (DbUnit gy = 0; gy < 64; ++gy) {
      for (const Rect& r : rects) {
        if (gx >= r.xlo && gx < r.xhi && gy >= r.ylo && gy < r.yhi) {
          brute += 1.0;
          break;
        }
      }
    }
  }
  EXPECT_DOUBLE_EQ(union_area(rects), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionProperty, ::testing::Range(1, 16));

TEST(Clip, ClipsAndDropsOutside) {
  const std::vector<Rect> rects{{0, 0, 10, 10}, {20, 20, 30, 30}};
  const auto out = clip_to_window(rects, {5, 5, 22, 22});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Rect{5, 5, 10, 10}));
  EXPECT_EQ(out[1], (Rect{20, 20, 22, 22}));
  EXPECT_TRUE(clip_to_window(rects, {100, 100, 110, 110}).empty());
}

TEST(RegionsOverlap, DetectsSharedArea) {
  EXPECT_TRUE(regions_overlap({{0, 0, 10, 10}}, {{9, 9, 12, 12}}));
  EXPECT_FALSE(regions_overlap({{0, 0, 10, 10}}, {{10, 0, 20, 10}}));
}

TEST(GridIndex, QueryMatchesBruteForce) {
  Rng rng(99);
  GridIndex index(50);
  std::vector<Rect> rects;
  for (std::size_t i = 0; i < 200; ++i) {
    const DbUnit x = rng.uniform_int(-500, 500);
    const DbUnit y = rng.uniform_int(-500, 500);
    const Rect r{x, y, x + rng.uniform_int(1, 120), y + rng.uniform_int(1, 120)};
    rects.push_back(r);
    index.insert(r, i);
  }
  EXPECT_EQ(index.size(), 200u);
  for (int q = 0; q < 30; ++q) {
    const DbUnit x = rng.uniform_int(-500, 500);
    const DbUnit y = rng.uniform_int(-500, 500);
    const Rect window{x, y, x + 150, y + 150};
    auto got = index.query(window);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      const Rect& r = rects[i];
      if (r.xlo <= window.xhi && r.xhi >= window.xlo && r.ylo <= window.yhi &&
          r.yhi >= window.ylo) {
        want.push_back(i);
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndex, NegativeCoordinatesBinned) {
  GridIndex index(100);
  index.insert({-250, -250, -150, -150}, 1);
  EXPECT_EQ(index.query({-300, -300, -200, -200}).size(), 1u);
  EXPECT_TRUE(index.query({0, 0, 100, 100}).empty());
}

}  // namespace
}  // namespace poc
