// Integration tests for the post-OPC timing flow (the paper's contribution)
// on small designs: OPC windows, extraction sanity, back-annotation,
// drawn-vs-annotated comparison, selective OPC, response-surface Monte
// Carlo and the multi-layer metal extension.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/flow.h"
#include "src/core/gate_bias.h"
#include "src/core/metal_flow.h"
#include "src/netlist/generators.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

/// Shared, lazily-built flow over c17 with model-based OPC already run.
class FlowFixture : public ::testing::Test {
 protected:
  static PostOpcFlow& flow() {
    static PlacedDesign design = place_and_route(make_c17(), lib());
    static std::unique_ptr<PostOpcFlow> instance = [] {
      FlowOptions opts;
      opts.sta.clock_period = 90.0;  // ~20 ps margin on c17
      auto f = std::make_unique<PostOpcFlow>(design, lib(), LithoSimulator{},
                                             opts);
      f->run_opc(OpcMode::kModelBased);
      return f;
    }();
    return *instance;
  }
};

TEST_F(FlowFixture, OpcProducesMasksForEveryInstance) {
  const OpcStats& stats = flow().opc_stats();
  EXPECT_EQ(stats.windows, 6u);
  EXPECT_EQ(stats.model_based_windows, 6u);
  EXPECT_GT(stats.fragments, 100u);
  EXPECT_LT(stats.max_abs_epe_nm, 20.0);
  for (std::size_t i = 0; i < flow().design().layout.num_instances(); ++i) {
    EXPECT_FALSE(flow().mask_for_instance(i).empty());
  }
}

TEST_F(FlowFixture, ExtractionCoversAllDevicesWithSaneCds) {
  const auto ext = flow().extract({});
  ASSERT_EQ(ext.size(), 6u);
  for (const GateExtraction& ge : ext) {
    EXPECT_EQ(ge.devices.size(), 4u);  // NAND2: 2 fingers x N/P
    for (const DeviceCd& dev : ge.devices) {
      EXPECT_TRUE(dev.profile.printed()) << dev.device;
      // Post-OPC gate CD lands near drawn.
      EXPECT_NEAR(dev.profile.mean_cd(), 90.0, 6.0) << dev.device;
      EXPECT_TRUE(dev.eq.functional);
      EXPECT_NEAR(dev.eq.l_eff_drive_nm, dev.profile.mean_cd(), 2.0);
      // Leakage-equivalent length never exceeds drive-equivalent.
      EXPECT_LE(dev.eq.l_eff_leak_nm, dev.eq.l_eff_drive_nm + 0.05);
    }
  }
}

TEST_F(FlowFixture, SubsetExtractionMatchesFull) {
  const std::vector<GateIdx> subset{1, 3};
  const auto part = flow().extract({}, subset);
  ASSERT_EQ(part.size(), 2u);
  const auto full = flow().extract({});
  for (std::size_t k = 0; k < subset.size(); ++k) {
    EXPECT_EQ(part[k].gate, subset[k]);
    for (std::size_t d = 0; d < part[k].devices.size(); ++d) {
      EXPECT_DOUBLE_EQ(part[k].devices[d].profile.mean_cd(),
                       full[subset[k]].devices[d].profile.mean_cd());
    }
  }
}

TEST_F(FlowFixture, AnnotationsNearUnityAtNominal) {
  const auto ext = flow().extract({});
  const auto ann = flow().annotate(ext);
  ASSERT_EQ(ann.size(), 6u);
  for (const DelayAnnotation& a : ann) {
    EXPECT_NEAR(a.fall_scale, 1.0, 0.12);
    EXPECT_NEAR(a.rise_scale, 1.0, 0.12);
    EXPECT_GT(a.leak_scale, 0.2);
    EXPECT_LT(a.leak_scale, 5.0);
  }
}

TEST_F(FlowFixture, DefocusShiftsAnnotationsCoherently) {
  const auto nominal = flow().annotate(flow().extract({}));
  const auto defocus = flow().annotate(flow().extract({150.0, 1.0}));
  // Through defocus, CDs move together; annotations shift measurably.
  double max_shift = 0.0;
  for (std::size_t g = 0; g < nominal.size(); ++g) {
    max_shift = std::max(
        max_shift, std::abs(defocus[g].fall_scale - nominal[g].fall_scale));
  }
  EXPECT_GT(max_shift, 0.01);
}

TEST_F(FlowFixture, CompareTimingProducesConsistentReport) {
  const TimingComparison cmp = flow().compare_timing();
  EXPECT_GT(cmp.drawn.worst_arrival, 0.0);
  EXPECT_GT(cmp.annotated.worst_arrival, 0.0);
  EXPECT_NE(cmp.annotated.worst_slack, cmp.drawn.worst_slack);
  EXPECT_GT(cmp.ranks.matched, 5u);
  // Same path set in both runs for this tiny design.
  EXPECT_EQ(cmp.drawn.paths.size(), cmp.annotated.paths.size());
  // The percentage bookkeeping is self-consistent.
  const double expect_pct =
      (cmp.annotated.worst_slack - cmp.drawn.worst_slack) /
      std::abs(cmp.drawn.worst_slack) * 100.0;
  EXPECT_NEAR(cmp.worst_slack_change_pct, expect_pct, 1e-9);
}

TEST_F(FlowFixture, AclvNoiseSpreadsAnnotations) {
  const auto ext = flow().extract({});
  Rng rng(77);
  const auto noisy = flow().annotate_with_aclv(ext, 2.0, rng);
  const auto clean = flow().annotate(ext);
  double spread = 0.0;
  for (std::size_t g = 0; g < clean.size(); ++g) {
    spread += std::abs(noisy[g].fall_scale - clean[g].fall_scale);
  }
  EXPECT_GT(spread, 0.01);
  // Deterministic under the same seed.
  Rng rng2(77);
  const auto noisy2 = flow().annotate_with_aclv(ext, 2.0, rng2);
  for (std::size_t g = 0; g < noisy.size(); ++g) {
    EXPECT_DOUBLE_EQ(noisy[g].fall_scale, noisy2[g].fall_scale);
  }
}

TEST_F(FlowFixture, ResponseSurfacesTrackDirectExtraction) {
  const std::vector<GateIdx> subset{0, 2};
  const auto responses = flow().fit_responses(subset);
  ASSERT_EQ(responses.size(), 2u * 4u);
  // At nominal, the fitted surface reproduces the measured mean CD closely.
  const auto direct = flow().extract({}, subset);
  std::size_t r = 0;
  for (std::size_t k = 0; k < subset.size(); ++k) {
    for (const DeviceCd& dev : direct[k].devices) {
      EXPECT_NEAR(responses[r].mean_cd.eval({0.0, 1.0}),
                  dev.profile.mean_cd(), 0.8)
          << dev.device;
      ++r;
    }
  }
  // Monte-Carlo reconstruction at nominal matches annotate() on direct
  // extraction to first order.
  Rng rng(1);
  const auto mc = flow().mc_extraction(responses, {0.0, 1.0}, 0.0, rng);
  const auto ann_mc = flow().annotate(mc);
  const auto ann_direct = flow().annotate(direct);
  for (GateIdx g : subset) {
    EXPECT_NEAR(ann_mc[g].fall_scale, ann_direct[g].fall_scale, 0.03);
  }
  // And defocus moves the reconstructed CDs the right way (narrower or
  // wider, but consistently with the fitted curvature sign).
  const auto mc_def = flow().mc_extraction(responses, {140.0, 1.0}, 0.0, rng);
  EXPECT_NE(mc_def[0].devices[0].profile.mean_cd(),
            mc[0].devices[0].profile.mean_cd());
}

TEST_F(FlowFixture, CriticalGateTaggingNonTrivial) {
  const auto critical = flow().tag_critical_gates(10.0);
  EXPECT_FALSE(critical.empty());
  EXPECT_LT(critical.size(), 6u);
}

TEST(SelectiveOpc, CriticalWindowsGetModelBasedTreatment) {
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions opts;
  opts.sta.clock_period = 90.0;
  PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);
  const auto critical = flow.tag_critical_gates(8.0);
  ASSERT_FALSE(critical.empty());
  flow.run_opc_selective(critical);
  const OpcStats& stats = flow.opc_stats();
  EXPECT_EQ(stats.windows, 6u);
  EXPECT_EQ(stats.model_based_windows, critical.size());
  // Extraction still works across both OPC styles.
  const auto ext = flow.extract({});
  for (const GateExtraction& ge : ext) {
    for (const DeviceCd& dev : ge.devices) {
      EXPECT_TRUE(dev.profile.printed());
    }
  }
}

TEST(OpcModes, RuleBasedBeatsNoOpcOnResidual) {
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions opts;
  PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);

  flow.run_opc(OpcMode::kNone);
  const auto raw = flow.extract({});
  flow.run_opc(OpcMode::kRuleBased);
  const auto ruled = flow.extract({});

  double raw_err = 0.0, ruled_err = 0.0;
  std::size_t n = 0;
  for (std::size_t g = 0; g < raw.size(); ++g) {
    for (std::size_t d = 0; d < raw[g].devices.size(); ++d) {
      raw_err += std::abs(raw[g].devices[d].profile.residual_nm());
      ruled_err += std::abs(ruled[g].devices[d].profile.residual_nm());
      ++n;
    }
  }
  raw_err /= static_cast<double>(n);
  ruled_err /= static_cast<double>(n);
  EXPECT_LT(ruled_err, raw_err);
}

TEST(MetalFlow, ExtractsPlausibleWidthRatios) {
  PlacedDesign design = place_and_route(make_benchmark("adder4"), lib());
  const LithoSimulator sim;
  const MetalCdReport report =
      extract_metal_cds(design, sim, {0.0, 1.0}, /*max_samples=*/4);
  EXPECT_GT(report.m1_samples + report.m2_samples, 0u);
  if (report.m1_samples > 0) {
    EXPECT_GT(report.scale.m1_width_ratio, 0.5);
    EXPECT_LT(report.scale.m1_width_ratio, 1.5);
  }
  if (report.m2_samples > 0) {
    EXPECT_GT(report.scale.m2_width_ratio, 0.5);
    EXPECT_LT(report.scale.m2_width_ratio, 1.5);
  }
}

TEST(SiliconMismatch, DisablingCollapsesResidualsAblation) {
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions matched;
  matched.silicon.enabled = false;
  PostOpcFlow ideal(design, lib(), LithoSimulator{}, matched);
  ideal.run_opc(OpcMode::kModelBased);
  PostOpcFlow real(design, lib(), LithoSimulator{}, FlowOptions{});
  real.run_opc(OpcMode::kModelBased);

  const auto resid_of = [](const std::vector<GateExtraction>& ext) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& ge : ext) {
      for (const auto& dev : ge.devices) {
        sum += std::abs(dev.profile.residual_nm());
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  const double ideal_resid = resid_of(ideal.extract({}));
  const double real_resid = resid_of(real.extract({}));
  // With a perfectly calibrated model, residuals sit at the OPC
  // convergence floor; the mismatch drives them to multiple nm.
  EXPECT_LT(ideal_resid, 1.0);
  EXPECT_GT(real_resid, ideal_resid * 2.0);
}

TEST(SiliconMismatch, ExposureMapping) {
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions opts;
  PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);
  const Exposure mapped = flow.silicon_exposure({10.0, 1.0});
  EXPECT_DOUBLE_EQ(mapped.focus_nm, 10.0 + opts.silicon.focus_bias_nm);
  EXPECT_DOUBLE_EQ(mapped.dose, opts.silicon.dose_scale);
  FlowOptions off;
  off.silicon.enabled = false;
  PostOpcFlow ideal(design, lib(), LithoSimulator{}, off);
  EXPECT_DOUBLE_EQ(ideal.silicon_exposure({10.0, 1.0}).focus_nm, 10.0);
  // The silicon simulator's resist differs only when the mismatch is on.
  EXPECT_DOUBLE_EQ(ideal.silicon_sim().resist().diffusion_nm,
                   LithoSimulator{}.resist().diffusion_nm);
  EXPECT_GT(flow.silicon_sim().resist().diffusion_nm,
            LithoSimulator{}.resist().diffusion_nm);
}

TEST_F(FlowFixture, HotspotScanRunsAndCountsConsistently) {
  OrcOptions orc;
  orc.epe_limit_nm = 6.0;
  const auto report =
      flow().scan_hotspots({{"nominal", {0.0, 1.0}},
                            {"stress", {150.0, 1.08}}},
                           orc);
  EXPECT_EQ(report.windows_checked, 6u);
  EXPECT_EQ(report.pinches + report.bridges + report.epe_violations,
            report.hotspots.size());
  // The stressed condition (high dose + defocus) must produce violations
  // the nominal condition does not.
  std::size_t stress_hits = 0;
  for (const auto& h : report.hotspots) {
    if (h.exposure_name == "stress") ++stress_hits;
  }
  EXPECT_GT(stress_hits, 0u);
  EXPECT_GE(stress_hits * 2, report.hotspots.size());
}

TEST(GateBias, SwapsOnlyNonCriticalGates) {
  const Netlist base = make_c17();
  const std::vector<GateIdx> keep{0, 2};
  const Netlist biased = with_long_gate_bias(base, keep);
  EXPECT_EQ(biased.num_gates(), base.num_gates());
  EXPECT_EQ(biased.num_nets(), base.num_nets());
  for (GateIdx g = 0; g < base.num_gates(); ++g) {
    const bool kept = g == 0 || g == 2;
    EXPECT_EQ(biased.gate(g).cell,
              kept ? base.gate(g).cell : long_gate_variant(base.gate(g).cell));
    EXPECT_EQ(biased.gate(g).inputs, base.gate(g).inputs);
    EXPECT_EQ(biased.gate(g).output, base.gate(g).output);
  }
}

TEST(GateBias, FullFlowTradesLeakageForSlack) {
  const Netlist base = make_c17();
  const Netlist biased = with_long_gate_bias(base, {});  // all gates long
  const PlacedDesign d_base = place_and_route(base, lib());
  const PlacedDesign d_bias = place_and_route(biased, lib());
  FlowOptions opts;
  opts.sta.clock_period = 120.0;
  PostOpcFlow f_base(d_base, lib(), LithoSimulator{}, opts);
  PostOpcFlow f_bias(d_bias, lib(), LithoSimulator{}, opts);
  f_base.run_opc(OpcMode::kModelBased);
  f_bias.run_opc(OpcMode::kModelBased);
  const auto ann_base = f_base.annotate(f_base.extract({}));
  const auto ann_bias = f_bias.annotate(f_bias.extract({}));
  const StaReport r_base = f_base.run_sta(&ann_base);
  const StaReport r_bias = f_bias.run_sta(&ann_bias);
  // Through the full litho flow: long gates leak less and run slower.
  EXPECT_LT(r_bias.total_leakage_ua, r_base.total_leakage_ua * 0.8);
  EXPECT_LT(r_bias.worst_slack, r_base.worst_slack);
}

TEST(GoldenT2, HeadlineLockedOnAdder4) {
  // Golden regression for the paper's headline (T2): the drawn-vs-post-OPC
  // worst-slack delta and the top-path order on adder4 are locked so that
  // parallelization or refactors of the flow cannot silently shift the
  // reproduced result.  If a change moves these numbers on purpose, the
  // goldens must be re-derived (threads=1 run) and the shift justified in
  // the PR.
  PlacedDesign design = place_and_route(make_benchmark("adder4"), lib());
  FlowOptions opts;
  opts.sta.clock_period = 260.0;
  opts.sta.max_paths = 16;
  opts.sta.path_window = 60.0;
  opts.threads = 1;  // determinism_test proves threads don't matter
  PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);
  flow.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = flow.compare_timing();

  constexpr double kGoldenDrawnWs = 3.0418011139082637;
  constexpr double kGoldenAnnotatedWs = 17.673627947543764;
  EXPECT_NEAR(cmp.drawn.worst_slack, kGoldenDrawnWs, 1e-6);
  EXPECT_NEAR(cmp.annotated.worst_slack, kGoldenAnnotatedWs, 1e-6);
  EXPECT_NEAR(cmp.worst_slack_change_pct,
              (kGoldenAnnotatedWs - kGoldenDrawnWs) /
                  std::abs(kGoldenDrawnWs) * 100.0,
              1e-4);

  // Top-10 path order of both analyses.  Note ranks 4-9 differ between the
  // two lists — the paper's speed-path reordering, locked in.
  const std::vector<std::string> golden_drawn_order = {
      "F:b0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "F:b0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "F:b0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "R:a0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:b0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "R:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "R:b0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:a0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
  };
  const std::vector<std::string> golden_annotated_order = {
      "F:b0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "F:b0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "F:b0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "F:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "R:a0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:b0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "R:a0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
      "F:a0/n0/n2/n3/n4/n8/n13/n17/n22/n26/n31/n33/n34/",
      "R:b0/n0/n1/n3/n4/n8/n13/n17/n22/n26/n31/n32/n34/",
  };
  ASSERT_GE(cmp.drawn.paths.size(), golden_drawn_order.size());
  for (std::size_t p = 0; p < golden_drawn_order.size(); ++p) {
    EXPECT_EQ(cmp.drawn.paths[p].signature(design.netlist),
              golden_drawn_order[p])
        << "drawn path rank " << p;
  }
  ASSERT_GE(cmp.annotated.paths.size(), golden_annotated_order.size());
  for (std::size_t p = 0; p < golden_annotated_order.size(); ++p) {
    EXPECT_EQ(cmp.annotated.paths[p].signature(design.netlist),
              golden_annotated_order[p])
        << "annotated path rank " << p;
  }
}

TEST(Flow, ExtractBeforeOpcRejected) {
  PlacedDesign design = place_and_route(make_c17(), lib());
  PostOpcFlow flow(design, lib());
  EXPECT_THROW(flow.extract({}), CheckError);
}

}  // namespace
}  // namespace poc
