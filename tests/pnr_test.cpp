// Tests for placement and routing: row legality, non-overlap, pin-accurate
// route endpoints and the PlacedDesign accessors.
#include <filesystem>

#include <gtest/gtest.h>

#include "src/netlist/generators.h"
#include "src/pnr/design.h"
#include "src/pnr/placement.h"
#include "src/stdcell/layout_gen.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

TEST(Placement, CellsInRowsWithoutOverlap) {
  const Netlist nl = make_benchmark("adder8");
  const Tech& tech = Tech::default_tech();
  const PlacementResult pl = place_rows(nl, lib(), tech, 1.0, 0);
  ASSERT_EQ(pl.transforms.size(), nl.num_gates());
  EXPECT_GE(pl.num_rows, 2u);
  std::vector<Rect> boxes;
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const CellSpec& spec = lib().spec(nl.gate(g).cell);
    const Rect box = pl.transforms[g].apply(
        Rect{0, 0, cell_width(spec, tech), tech.cell_height});
    // Row alignment.
    EXPECT_EQ(box.ylo % tech.cell_height, 0) << g;
    EXPECT_EQ(box.height(), tech.cell_height);
    EXPECT_GE(box.xlo, 0);
    boxes.push_back(box);
  }
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      EXPECT_FALSE(boxes[i].intersects(boxes[j])) << i << " vs " << j;
    }
  }
}

TEST(Placement, AlternatingOrientation) {
  const Netlist nl = make_benchmark("adder8");
  const PlacementResult pl =
      place_rows(nl, lib(), Tech::default_tech(), 1.0, 0);
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const Orient o = pl.transforms[g].orient;
    EXPECT_TRUE(o == Orient::kR0 || o == Orient::kMX);
    const DbUnit row = pl.transforms[g].apply(Rect{0, 0, 10, 10}).ylo /
                       Tech::default_tech().cell_height;
    EXPECT_EQ(o == Orient::kR0, row % 2 == 0);
  }
}

TEST(Placement, AspectRatioControlsRows) {
  const Netlist nl = make_benchmark("rand200");
  const auto square = place_rows(nl, lib(), Tech::default_tech(), 1.0, 0);
  const auto wide = place_rows(nl, lib(), Tech::default_tech(), 4.0, 0);
  EXPECT_GT(square.num_rows, wide.num_rows);
}

TEST(PlaceAndRoute, DesignIsConsistent) {
  const Netlist nl = make_benchmark("adder4");
  const PlacedDesign design = place_and_route(nl, lib());
  EXPECT_TRUE(design.layout.frozen());
  EXPECT_EQ(design.layout.num_instances(), nl.num_gates());
  EXPECT_EQ(design.gate_to_instance.size(), nl.num_gates());
  // Every gate resolves to annotated transistors.
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const auto gates = design.gates_of(g);
    const CellSpec& spec = lib().spec(nl.gate(g).cell);
    EXPECT_EQ(gates.size(), 2 * finger_count(spec));
    const Rect window = design.litho_window(g);
    for (const PlacedGate* pg : gates) {
      EXPECT_TRUE(window.contains(pg->region));
    }
  }
}

TEST(PlaceAndRoute, RoutesTerminateAtPins) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  const Tech& tech = design.tech;
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNoIndex || net.sinks.empty()) continue;
    const NetRoute& route = design.routes[n];
    ASSERT_EQ(route.sinks.size(), net.sinks.size());
    for (std::size_t k = 0; k < route.sinks.size(); ++k) {
      const SinkRoute& sr = route.sinks[k];
      EXPECT_EQ(sr.sink_gate, net.sinks[k].first);
      // The sink pin lies inside (or on) one of the route's M1 shapes, or
      // driver and sink share coordinates (zero-length route).
      const GateInst& snk = nl.gate(sr.sink_gate);
      const CellSpec& spec = lib().spec(snk.cell);
      const Point pin =
          design.layout.instance(design.gate_to_instance[sr.sink_gate])
              .transform.apply(
                  pin_position(spec, tech, spec.inputs[sr.sink_pin]));
      bool touched = sr.segments.empty();
      for (const RouteSegment& seg : sr.segments) {
        if (seg.rect.inflated(tech.m1_width).contains(pin)) touched = true;
      }
      EXPECT_TRUE(touched) << nl.net(n).name << " sink " << k;
    }
  }
}

TEST(PlaceAndRoute, WireLengthsPositiveAndConsistent) {
  const Netlist nl = make_benchmark("adder4");
  const PlacedDesign design = place_and_route(nl, lib());
  Um total = 0.0;
  for (const NetRoute& route : design.routes) {
    for (const SinkRoute& sr : route.sinks) {
      EXPECT_GE(sr.length_m1, 0.0);
      EXPECT_GE(sr.length_m2, 0.0);
    }
    total += route.total_length();
  }
  EXPECT_GT(total, 10.0);  // a real design has real wire
}

TEST(PlaceAndRoute, NoRouteOptionSkipsWires) {
  const Netlist nl = make_benchmark("c17");
  PlaceRouteOptions opts;
  opts.route = false;
  const PlacedDesign design = place_and_route(nl, lib(), Tech::default_tech(),
                                              opts);
  EXPECT_TRUE(design.routes.empty());
  EXPECT_TRUE(design.layout.top_shapes().empty());
}

TEST(PlaceAndRoute, LithoWindowCoversNeighbourContext) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  const Rect w = design.litho_window(0, 600);
  const Rect boundary = design.layout
                            .instance(design.gate_to_instance[0])
                            .transform.apply(design.layout.cell(
                                design.layout.instance(
                                    design.gate_to_instance[0]).cell)
                                .boundary);
  EXPECT_EQ(w, boundary.inflated(600));
}

}  // namespace
}  // namespace poc
