// Tests for the process-variation model: corners, sampling statistics and
// the CD response-surface fit.
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/var/variation.h"

namespace poc {
namespace {

TEST(Corners, FullSingleAndTwoAxisGrid) {
  const auto corners = standard_corners();
  ASSERT_EQ(corners.size(), 9u);
  EXPECT_EQ(corners[0].name, "nominal");
  EXPECT_DOUBLE_EQ(corners[0].exposure.focus_nm, 0.0);
  EXPECT_DOUBLE_EQ(corners[0].exposure.dose, 1.0);
  int pos_focus = 0, neg_focus = 0, dose_only = 0;
  for (const auto& c : corners) {
    if (c.exposure.focus_nm > 0) ++pos_focus;
    if (c.exposure.focus_nm < 0) ++neg_focus;
    if (c.exposure.focus_nm == 0.0 && c.exposure.dose != 1.0) ++dose_only;
  }
  EXPECT_EQ(pos_focus, 3);
  EXPECT_EQ(neg_focus, 3);
  EXPECT_EQ(dose_only, 2);  // the single-axis dose corners T3 relies on
}

TEST(VariationModel, SamplingMoments) {
  VariationModel model;
  Rng rng(21);
  RunningStats focus, dose, aclv;
  for (int i = 0; i < 20000; ++i) {
    const Exposure e = model.sample_exposure(rng);
    focus.add(e.focus_nm);
    dose.add(e.dose);
    aclv.add(model.sample_aclv_nm(rng));
  }
  EXPECT_NEAR(focus.mean(), 0.0, 1.0);
  EXPECT_NEAR(focus.stddev(), model.focus_sigma_nm, 1.0);
  EXPECT_NEAR(dose.mean(), 1.0, 0.001);
  EXPECT_NEAR(dose.stddev(), model.dose_sigma, 0.001);
  EXPECT_NEAR(aclv.stddev(), model.aclv_sigma_nm, 0.05);
}

TEST(CdResponse, EvalFormula) {
  const CdResponse r{90.0, -1e-4, 2e-3, -50.0, -400.0};
  EXPECT_DOUBLE_EQ(r.eval({0.0, 1.0}), 90.0);
  EXPECT_DOUBLE_EQ(r.eval({100.0, 1.0}), 90.0 - 1.0 + 0.2);
  EXPECT_DOUBLE_EQ(r.eval({0.0, 1.02}), 90.0 - 1.0 - 400.0 * 0.0004);
}

TEST(CdResponse, FitRecoversSyntheticSurface) {
  const CdResponse truth{88.5, -2.5e-4, 1.2e-3, -42.0, -300.0};
  std::vector<std::pair<Exposure, double>> samples;
  for (const Exposure& e : response_fit_grid()) {
    samples.emplace_back(e, truth.eval(e));
  }
  const CdResponse fit = fit_cd_response(samples);
  EXPECT_NEAR(fit.c0, truth.c0, 1e-8);
  EXPECT_NEAR(fit.cf2, truth.cf2, 1e-12);
  EXPECT_NEAR(fit.cf, truth.cf, 1e-11);
  EXPECT_NEAR(fit.cd1, truth.cd1, 1e-7);
  EXPECT_NEAR(fit.cd2, truth.cd2, 1e-5);
}

TEST(CdResponse, QuadraticDoseCapturesAsymmetry) {
  // Synthetic asymmetric dose response: thinning at over-dose is ~3x the
  // thickening at under-dose.  A quadratic fit must capture both signs.
  std::vector<std::pair<Exposure, double>> samples;
  for (const Exposure& e : response_fit_grid()) {
    const double dd = e.dose - 1.0;
    samples.emplace_back(e, 90.0 - 150.0 * dd - 1500.0 * dd * dd);
  }
  const CdResponse fit = fit_cd_response(samples);
  EXPECT_NEAR(fit.eval({0.0, 1.06}), 90.0 - 9.0 - 5.4, 0.2);
  EXPECT_NEAR(fit.eval({0.0, 0.94}), 90.0 + 9.0 - 5.4, 0.2);
}

TEST(CdResponse, FitToleratesNoise) {
  const CdResponse truth{90.0, -3e-4, 0.0, -45.0, 0.0};
  Rng rng(31);
  std::vector<std::pair<Exposure, double>> samples;
  // Denser grid for averaging.
  for (double f : {-120.0, -60.0, 0.0, 60.0, 120.0}) {
    for (double d : {0.94, 0.97, 1.0, 1.03, 1.06}) {
      const Exposure e{f, d};
      samples.emplace_back(e, truth.eval(e) + rng.normal(0.0, 0.1));
    }
  }
  const CdResponse fit = fit_cd_response(samples);
  EXPECT_NEAR(fit.c0, truth.c0, 0.2);
  EXPECT_NEAR(fit.cd1, truth.cd1, 3.0);
}

TEST(ResponseFitGrid, CoversCorners) {
  const auto grid = response_fit_grid(120.0, 0.06);
  EXPECT_EQ(grid.size(), 9u);
  bool has_nominal = false;
  for (const Exposure& e : grid) {
    if (e.focus_nm == 0.0 && e.dose == 1.0) has_nominal = true;
    EXPECT_LE(std::abs(e.focus_nm), 120.0);
    EXPECT_GE(e.dose, 0.94 - 1e-12);
    EXPECT_LE(e.dose, 1.06 + 1e-12);
  }
  EXPECT_TRUE(has_nominal);
}

}  // namespace
}  // namespace poc
