// Tests for parasitic extraction: per-unit values, Elmore delays and the
// litho-measured linewidth scaling used by the multi-layer flow.
#include <filesystem>

#include <gtest/gtest.h>

#include "src/netlist/generators.h"
#include "src/pex/extractor.h"
#include "src/pex/spef_writer.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

NetRoute straight_route(Um m1_um, Um m2_um) {
  NetRoute r;
  SinkRoute s;
  s.length_m1 = m1_um;
  s.length_m2 = m2_um;
  r.sinks.push_back(s);
  return r;
}

TEST(Extractor, PerUnitValuesAtDrawnWidth) {
  const Tech tech;
  const Extractor ex(tech);
  // m1: 0.08 ohm/sq at 0.12 um width -> 0.667 ohm/um.
  EXPECT_NEAR(ex.m1_res_per_um(), 0.08 / 0.12, 1e-9);
  EXPECT_NEAR(ex.m2_res_per_um(), 0.05 / 0.14, 1e-9);
  EXPECT_DOUBLE_EQ(ex.m1_cap_per_um(), tech.m1_cap_per_um_ff);
}

TEST(Extractor, NarrowerPrintedMetalRaisesRLowersC) {
  const Tech tech;
  MetalCdScale scale;
  scale.m1_width_ratio = 0.8;  // printed 20 % narrow
  const Extractor nominal(tech);
  const Extractor scaled(tech, scale);
  EXPECT_GT(scaled.m1_res_per_um(), nominal.m1_res_per_um() * 1.2);
  EXPECT_LT(scaled.m1_cap_per_um(), nominal.m1_cap_per_um());
  // m2 untouched.
  EXPECT_DOUBLE_EQ(scaled.m2_res_per_um(), nominal.m2_res_per_um());
}

TEST(Extractor, NetParasiticsScaleWithLength) {
  const Tech tech;
  const Extractor ex(tech);
  const NetParasitics a = ex.extract_net(straight_route(10.0, 0.0));
  const NetParasitics b = ex.extract_net(straight_route(20.0, 0.0));
  ASSERT_EQ(a.sinks.size(), 1u);
  EXPECT_NEAR(b.wire_cap, 2.0 * a.wire_cap, 1e-9);
  EXPECT_GT(b.sinks[0].elmore_ps, a.sinks[0].elmore_ps * 2.0);  // quadratic-ish
  EXPECT_GT(a.sinks[0].path_res, 2.0 * tech.contact_res_ohm);   // vias counted
}

TEST(Extractor, ElmoreMatchesHandComputation) {
  const Tech tech;
  const Extractor ex(tech);
  const NetParasitics p = ex.extract_net(straight_route(100.0, 0.0));
  const Ohm r = 100.0 * (0.08 / 0.12) + 2.0 * tech.contact_res_ohm;
  const Ff c = 100.0 * tech.m1_cap_per_um_ff;
  EXPECT_NEAR(p.sinks[0].elmore_ps, rc_to_ps(r, c / 2.0), 1e-9);
}

TEST(Extractor, DesignExtractionCoversAllNets) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  const Extractor ex(design.tech);
  const auto all = ex.extract_design(design);
  ASSERT_EQ(all.size(), nl.num_nets());
  // Driven, sunk nets have parasitics; wire cap positive where routed.
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver != kNoIndex && !net.sinks.empty()) {
      EXPECT_EQ(all[n].sinks.size(), net.sinks.size());
      EXPECT_GE(all[n].wire_cap, 0.0);
    }
  }
}

TEST(SpefWriter, EmitsEveryRoutedNetWithHeaderAndConsistentValues) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  const Extractor ex(design.tech);
  const std::string spef = spef_to_string(design, ex);
  EXPECT_NE(spef.find("*SPEF"), std::string::npos);
  EXPECT_NE(spef.find("*T_UNIT 1 PS"), std::string::npos);
  // One *D_NET per driven net with sinks.
  std::size_t expected = 0;
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver != kNoIndex && !net.sinks.empty()) {
      ++expected;
      EXPECT_NE(spef.find("*D_NET " + net.name + " "), std::string::npos)
          << net.name;
    }
  }
  std::size_t count = 0;
  for (std::size_t pos = spef.find("*D_NET"); pos != std::string::npos;
       pos = spef.find("*D_NET", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, expected);
  // Balanced sections.
  std::size_t ends = 0;
  for (std::size_t pos = spef.find("*END"); pos != std::string::npos;
       pos = spef.find("*END", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(ends, expected);
  // Driver pins appear as outputs.
  EXPECT_NE(spef.find(":Y O"), std::string::npos);
  EXPECT_NE(spef.find(":A I"), std::string::npos);
}

TEST(Extractor, ZeroWidthRatioRejected) {
  MetalCdScale scale;
  scale.m1_width_ratio = 0.0;
  const Extractor ex(Tech{}, scale);
  EXPECT_THROW(ex.m1_res_per_um(), CheckError);
}

}  // namespace
}  // namespace poc
