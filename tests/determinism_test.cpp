// Determinism property tests for the parallel window engine: the whole
// point of src/par is that thread count is a pure performance knob, so
// every flow product — masks, OPC stats, CD records, annotations, slacks,
// hotspot lists, Monte-Carlo samples — must be bit-identical between
// threads=1 and threads=4.  EXPECT_EQ on doubles below is deliberate:
// approximate equality would hide reduction-order bugs.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/flow.h"
#include "src/core/mc_timing.h"
#include "src/netlist/generators.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

FlowOptions options_with_threads(std::size_t threads) {
  FlowOptions opts;
  opts.sta.clock_period = 90.0;
  opts.threads = threads;
  return opts;
}

void expect_same_extraction(const std::vector<GateExtraction>& a,
                            const std::vector<GateExtraction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].gate, b[g].gate);
    ASSERT_EQ(a[g].devices.size(), b[g].devices.size());
    for (std::size_t d = 0; d < a[g].devices.size(); ++d) {
      const DeviceCd& da = a[g].devices[d];
      const DeviceCd& db = b[g].devices[d];
      EXPECT_EQ(da.device, db.device);
      EXPECT_EQ(da.is_nmos, db.is_nmos);
      EXPECT_EQ(da.drawn_l_nm, db.drawn_l_nm);
      EXPECT_EQ(da.drawn_w_nm, db.drawn_w_nm);
      EXPECT_EQ(da.profile.slice_width_nm, db.profile.slice_width_nm);
      EXPECT_EQ(da.profile.drawn_cd_nm, db.profile.drawn_cd_nm);
      ASSERT_EQ(da.profile.slice_cd_nm.size(), db.profile.slice_cd_nm.size());
      for (std::size_t s = 0; s < da.profile.slice_cd_nm.size(); ++s) {
        EXPECT_EQ(da.profile.slice_cd_nm[s], db.profile.slice_cd_nm[s])
            << "gate " << g << " dev " << d << " slice " << s;
      }
      EXPECT_EQ(da.eq.width_um, db.eq.width_um);
      EXPECT_EQ(da.eq.ion_ua, db.eq.ion_ua);
      EXPECT_EQ(da.eq.ioff_ua, db.eq.ioff_ua);
      EXPECT_EQ(da.eq.l_eff_drive_nm, db.eq.l_eff_drive_nm);
      EXPECT_EQ(da.eq.l_eff_leak_nm, db.eq.l_eff_leak_nm);
      EXPECT_EQ(da.eq.functional, db.eq.functional);
    }
  }
}

/// A serial and a 4-thread flow over the same design, OPC already run.
class DeterminismFixture : public ::testing::Test {
 protected:
  static PostOpcFlow& serial() { return *flows().first; }
  static PostOpcFlow& parallel() { return *flows().second; }

  static const PlacedDesign& design() {
    static PlacedDesign d = place_and_route(make_c17(), lib());
    return d;
  }

 private:
  static std::pair<std::unique_ptr<PostOpcFlow>, std::unique_ptr<PostOpcFlow>>&
  flows() {
    static auto built = [] {
      auto s = std::make_unique<PostOpcFlow>(design(), lib(), LithoSimulator{},
                                             options_with_threads(1));
      auto p = std::make_unique<PostOpcFlow>(design(), lib(), LithoSimulator{},
                                             options_with_threads(4));
      s->run_opc(OpcMode::kModelBased);
      p->run_opc(OpcMode::kModelBased);
      return std::make_pair(std::move(s), std::move(p));
    }();
    return built;
  }
};

TEST_F(DeterminismFixture, OpcMasksAndStatsBitIdentical) {
  const OpcStats& a = serial().opc_stats();
  const OpcStats& b = parallel().opc_stats();
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.model_based_windows, b.model_based_windows);
  EXPECT_EQ(a.fragments, b.fragments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.max_abs_epe_nm, b.max_abs_epe_nm);
  EXPECT_EQ(a.rms_epe_sum, b.rms_epe_sum);
  for (std::size_t i = 0; i < design().layout.num_instances(); ++i) {
    const std::vector<Rect>& ma = serial().mask_for_instance(i);
    const std::vector<Rect>& mb = parallel().mask_for_instance(i);
    ASSERT_EQ(ma.size(), mb.size()) << "instance " << i;
    for (std::size_t r = 0; r < ma.size(); ++r) {
      EXPECT_EQ(ma[r], mb[r]) << "instance " << i << " rect " << r;
    }
  }
}

TEST_F(DeterminismFixture, ExtractionBitIdenticalNominalAndDefocus) {
  expect_same_extraction(serial().extract({}), parallel().extract({}));
  expect_same_extraction(serial().extract({120.0, 1.04}),
                         parallel().extract({120.0, 1.04}));
}

TEST_F(DeterminismFixture, CompareTimingBitIdentical) {
  const TimingComparison a = serial().compare_timing();
  const TimingComparison b = parallel().compare_timing();
  EXPECT_EQ(a.drawn.worst_slack, b.drawn.worst_slack);
  EXPECT_EQ(a.annotated.worst_slack, b.annotated.worst_slack);
  EXPECT_EQ(a.annotated.total_leakage_ua, b.annotated.total_leakage_ua);
  EXPECT_EQ(a.worst_slack_change_pct, b.worst_slack_change_pct);
  ASSERT_EQ(a.annotated.paths.size(), b.annotated.paths.size());
  for (std::size_t p = 0; p < a.annotated.paths.size(); ++p) {
    EXPECT_EQ(a.annotated.paths[p].signature(design().netlist),
              b.annotated.paths[p].signature(design().netlist));
    EXPECT_EQ(a.annotated.paths[p].arrival, b.annotated.paths[p].arrival);
  }
}

TEST_F(DeterminismFixture, HotspotScanBitIdentical) {
  OrcOptions orc;
  orc.epe_limit_nm = 6.0;
  const std::vector<ProcessCorner> corners{{"nominal", {0.0, 1.0}},
                                           {"stress", {150.0, 1.08}}};
  const auto a = serial().scan_hotspots(corners, orc);
  const auto b = parallel().scan_hotspots(corners, orc);
  EXPECT_EQ(a.windows_checked, b.windows_checked);
  EXPECT_EQ(a.pinches, b.pinches);
  EXPECT_EQ(a.bridges, b.bridges);
  EXPECT_EQ(a.epe_violations, b.epe_violations);
  ASSERT_EQ(a.hotspots.size(), b.hotspots.size());
  // Violation *order* must match too: merge happens in instance order.
  for (std::size_t h = 0; h < a.hotspots.size(); ++h) {
    EXPECT_EQ(a.hotspots[h].instance, b.hotspots[h].instance);
    EXPECT_EQ(a.hotspots[h].exposure_name, b.hotspots[h].exposure_name);
  }
}

TEST_F(DeterminismFixture, MonteCarloTimingBitIdentical) {
  const std::vector<GateIdx> subset{0, 2, 4};
  const auto responses = serial().fit_responses(subset);
  const auto responses_par = parallel().fit_responses(subset);
  ASSERT_EQ(responses.size(), responses_par.size());
  for (std::size_t r = 0; r < responses.size(); ++r) {
    EXPECT_EQ(responses[r].mean_cd.c0, responses_par[r].mean_cd.c0);
    EXPECT_EQ(responses[r].mean_cd.cf, responses_par[r].mean_cd.cf);
    EXPECT_EQ(responses[r].mean_cd.cd1, responses_par[r].mean_cd.cd1);
  }

  const VariationModel model;
  const McTimingResult a =
      run_mc_timing(serial(), responses, model, 40, /*seed=*/123);
  const McTimingResult b =
      run_mc_timing(parallel(), responses, model, 40, /*seed=*/123);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t s = 0; s < a.samples.size(); ++s) {
    EXPECT_EQ(a.samples[s].exposure.focus_nm, b.samples[s].exposure.focus_nm);
    EXPECT_EQ(a.samples[s].exposure.dose, b.samples[s].exposure.dose);
    EXPECT_EQ(a.samples[s].worst_slack, b.samples[s].worst_slack);
    EXPECT_EQ(a.samples[s].leakage_ua, b.samples[s].leakage_ua);
  }
  EXPECT_EQ(a.slack_stats.mean(), b.slack_stats.mean());
  EXPECT_EQ(a.leak_stats.stddev(), b.leak_stats.stddev());
}

TEST(DeterminismSocs, SocsFlowBitIdenticalAcrossThreads) {
  // The SOCS fast imaging path must honour the same contract as Abbe:
  // thread count is a pure performance knob.  Both the parity-packed
  // nominal path (OPC iterations) and the generic complex path (defocused
  // extraction) run inside this flow.
  PlacedDesign design = place_and_route(make_c17(), lib());
  FlowOptions serial_opts = options_with_threads(1);
  serial_opts.imaging.mode = ImagingMode::kSocs;
  FlowOptions parallel_opts = options_with_threads(4);
  parallel_opts.imaging.mode = ImagingMode::kSocs;
  PostOpcFlow serial(design, lib(), LithoSimulator{}, serial_opts);
  PostOpcFlow parallel(design, lib(), LithoSimulator{}, parallel_opts);
  serial.run_opc(OpcMode::kModelBased);
  parallel.run_opc(OpcMode::kModelBased);
  EXPECT_EQ(serial.opc_stats().iterations, parallel.opc_stats().iterations);
  EXPECT_EQ(serial.opc_stats().rms_epe_sum, parallel.opc_stats().rms_epe_sum);
  for (std::size_t i = 0; i < design.layout.num_instances(); ++i) {
    const std::vector<Rect>& ma = serial.mask_for_instance(i);
    const std::vector<Rect>& mb = parallel.mask_for_instance(i);
    ASSERT_EQ(ma.size(), mb.size()) << "instance " << i;
    for (std::size_t r = 0; r < ma.size(); ++r) {
      EXPECT_EQ(ma[r], mb[r]) << "instance " << i << " rect " << r;
    }
  }
  expect_same_extraction(serial.extract({}), parallel.extract({}));
  expect_same_extraction(serial.extract({120.0, 1.04}),
                         parallel.extract({120.0, 1.04}));
  const TimingComparison a = serial.compare_timing();
  const TimingComparison b = parallel.compare_timing();
  EXPECT_EQ(a.annotated.worst_slack, b.annotated.worst_slack);
  EXPECT_EQ(a.worst_slack_change_pct, b.worst_slack_change_pct);
}

TEST(DeterminismBatch, BatchWidthIsAPurePerformanceKnob) {
  // The batched SoA engine's contract: ImagingOptions::batch_windows is a
  // pure performance knob.  batch_windows = 0 runs the exact pre-batching
  // scalar loop; every other width — including kBatchWindowsAuto, which
  // resolves to the full parallel chunk — must reproduce its masks, OPC
  // stats, per-gate CDs and annotated worst slack bit for bit, at 1 and 4
  // threads.  Model-based OPC exercises both the draft-quality SOCS
  // iterations and the sign-off pass inside correct_batch's lockstep loop.
  PlacedDesign design = place_and_route(make_c17(), lib());
  const auto run = [&](std::size_t batch, std::size_t threads) {
    FlowOptions opts = options_with_threads(threads);
    opts.imaging.mode = ImagingMode::kSocs;
    opts.imaging.batch_windows = batch;
    auto flow =
        std::make_unique<PostOpcFlow>(design, lib(), LithoSimulator{}, opts);
    flow->run_opc(OpcMode::kModelBased);
    return flow;
  };
  const auto scalar = run(0, 1);
  const std::vector<GateExtraction> scalar_ext = scalar->extract({});
  const TimingComparison scalar_cmp = scalar->compare_timing();
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                  kBatchWindowsAuto}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto batched = run(batch, threads);
      EXPECT_EQ(scalar->opc_stats().iterations,
                batched->opc_stats().iterations);
      EXPECT_EQ(scalar->opc_stats().rms_epe_sum,
                batched->opc_stats().rms_epe_sum);
      for (std::size_t i = 0; i < design.layout.num_instances(); ++i) {
        const std::vector<Rect>& ma = scalar->mask_for_instance(i);
        const std::vector<Rect>& mb = batched->mask_for_instance(i);
        ASSERT_EQ(ma.size(), mb.size()) << "instance " << i;
        for (std::size_t r = 0; r < ma.size(); ++r) {
          EXPECT_EQ(ma[r], mb[r]) << "instance " << i << " rect " << r;
        }
      }
      expect_same_extraction(scalar_ext, batched->extract({}));
      const TimingComparison cmp = batched->compare_timing();
      EXPECT_EQ(scalar_cmp.annotated.worst_slack, cmp.annotated.worst_slack)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(scalar_cmp.annotated.total_leakage_ua,
                cmp.annotated.total_leakage_ua);
    }
  }
}

TEST(DeterminismBatch, HotspotScanBitIdenticalAcrossBatchWidths) {
  // The scan stages two latents per (window, corner) through the batched
  // engine; violation lists and order must match the scalar loop exactly.
  PlacedDesign design = place_and_route(make_c17(), lib());
  OrcOptions orc;
  orc.epe_limit_nm = 6.0;
  const std::vector<ProcessCorner> corners{{"nominal", {0.0, 1.0}},
                                           {"stress", {150.0, 1.08}}};
  const auto scan = [&](std::size_t batch, std::size_t threads) {
    FlowOptions opts = options_with_threads(threads);
    opts.imaging.mode = ImagingMode::kSocs;
    opts.imaging.batch_windows = batch;
    PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);
    flow.run_opc(OpcMode::kModelBased);
    return flow.scan_hotspots(corners, orc);
  };
  const auto a = scan(0, 1);
  const auto b = scan(kBatchWindowsAuto, 4);
  EXPECT_EQ(a.windows_checked, b.windows_checked);
  EXPECT_EQ(a.pinches, b.pinches);
  EXPECT_EQ(a.bridges, b.bridges);
  EXPECT_EQ(a.epe_violations, b.epe_violations);
  ASSERT_EQ(a.hotspots.size(), b.hotspots.size());
  for (std::size_t h = 0; h < a.hotspots.size(); ++h) {
    EXPECT_EQ(a.hotspots[h].instance, b.hotspots[h].instance);
    EXPECT_EQ(a.hotspots[h].exposure_name, b.hotspots[h].exposure_name);
    EXPECT_EQ(a.hotspots[h].violation.value_nm, b.hotspots[h].violation.value_nm);
  }
}

TEST(DeterminismBatch, AbbeReferencePathIgnoresBatchKnob) {
  // The Abbe reference engine never batches: any batch_windows value must
  // leave its results untouched (the flow's batching gate is SOCS-only).
  PlacedDesign design = place_and_route(make_c17(), lib());
  const auto extract_with_batch = [&](std::size_t batch) {
    FlowOptions opts = options_with_threads(4);
    opts.imaging.batch_windows = batch;  // mode stays kAbbe
    PostOpcFlow flow(design, lib(), LithoSimulator{}, opts);
    flow.run_opc(OpcMode::kRuleBased);
    return flow.extract({}, std::vector<GateIdx>{0, 1, 2});
  };
  expect_same_extraction(extract_with_batch(0),
                         extract_with_batch(kBatchWindowsAuto));
}

TEST(DeterminismAdder4, SelectiveFlowBitIdentical) {
  // Second design (adder4), selective OPC + subset extraction: the mixed
  // rule-based / model-based path must be as deterministic as the uniform
  // one.
  PlacedDesign design = place_and_route(make_benchmark("adder4"), lib());
  PostOpcFlow serial(design, lib(), LithoSimulator{}, options_with_threads(1));
  PostOpcFlow parallel(design, lib(), LithoSimulator{},
                       options_with_threads(4));
  const auto critical = serial.tag_critical_gates(25.0);
  ASSERT_FALSE(critical.empty());
  serial.run_opc_selective(critical);
  parallel.run_opc_selective(critical);
  EXPECT_EQ(serial.opc_stats().fragments, parallel.opc_stats().fragments);
  EXPECT_EQ(serial.opc_stats().rms_epe_sum, parallel.opc_stats().rms_epe_sum);
  expect_same_extraction(serial.extract({}, critical),
                         parallel.extract({}, critical));
}

}  // namespace
}  // namespace poc
