// Tests for contour extraction and CD measurement on synthetic fields with
// known geometry, plus end-to-end extraction on simulated latent images.
#include <cmath>

#include <gtest/gtest.h>

#include "src/cdx/cd_extract.h"
#include "src/cdx/contour.h"
#include "src/litho/simulator.h"

namespace poc {
namespace {

/// Analytic field: a smooth "valley" of half-width w centred at x = 0:
/// f(x, y) = (x / w)^2.  The 1.0-contour sits exactly at |x| = w.
Image2D valley_field(double w, std::size_t n = 128, double pixel = 4.0) {
  Image2D img(n, n, pixel, -pixel * static_cast<double>(n) / 2.0,
              -pixel * static_cast<double>(n) / 2.0);
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      const double x = img.x_of(ix);
      img.at(ix, iy) = (x / w) * (x / w);
    }
  }
  return img;
}

/// Radial cone: f = r / r0; the 1.0-contour is a circle of radius r0.
Image2D cone_field(double r0, std::size_t n = 128, double pixel = 4.0) {
  Image2D img(n, n, pixel, -pixel * static_cast<double>(n) / 2.0,
              -pixel * static_cast<double>(n) / 2.0);
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      img.at(ix, iy) = std::hypot(img.x_of(ix), img.y_of(iy)) / r0;
    }
  }
  return img;
}

TEST(FirstCrossing, FindsAndRefines) {
  const Image2D img = valley_field(60.0);
  const auto hit = first_crossing(img, 1.0, {0.0, 0.0}, {200.0, 0.0}, 2.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 60.0, 0.3);
}

TEST(FirstCrossing, NoCrossingReturnsNull) {
  const Image2D img = valley_field(60.0);
  EXPECT_FALSE(first_crossing(img, 1.0, {0.0, 0.0}, {30.0, 0.0}, 2.0));
  EXPECT_FALSE(first_crossing(img, 1.0, {0.0, 0.0}, {0.0, 0.0}, 2.0));
}

TEST(FirstCrossing, WorksInBothDirections) {
  const Image2D img = valley_field(50.0);
  const auto left = first_crossing(img, 1.0, {0.0, 0.0}, {-200.0, 0.0}, 2.0);
  ASSERT_TRUE(left.has_value());
  EXPECT_NEAR(*left, 50.0, 0.3);
}

TEST(PrintedWidth, MeasuresValleyWidth) {
  const Image2D img = valley_field(45.0);
  const auto w = printed_width(img, 1.0, {0.0, 0.0}, true, 300.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, 90.0, 0.5);
}

TEST(PrintedWidth, CentreAboveThresholdMeansNotPrinted) {
  const Image2D img = valley_field(45.0);
  EXPECT_FALSE(printed_width(img, 1.0, {100.0, 0.0}, true, 300.0));
}

TEST(PrintedWidth, VerticalDirection) {
  const Image2D img = cone_field(80.0);
  const auto w = printed_width(img, 1.0, {0.0, 0.0}, false, 300.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, 160.0, 1.0);
}

TEST(TraceContours, CircleIsClosedWithRightLength) {
  const Image2D img = cone_field(100.0);
  const auto paths = trace_contours(img, 1.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].closed);
  const double circumference = 2.0 * 3.14159265 * 100.0;
  EXPECT_NEAR(paths[0].length(), circumference, circumference * 0.02);
}

TEST(TraceContours, TwoSeparateFeatures) {
  Image2D img(128, 64, 4.0, -256.0, -128.0);
  for (std::size_t iy = 0; iy < 64; ++iy) {
    for (std::size_t ix = 0; ix < 128; ++ix) {
      const double x = img.x_of(ix);
      const double y = img.y_of(iy);
      const double d1 = std::hypot(x + 120.0, y) / 40.0;
      const double d2 = std::hypot(x - 120.0, y) / 40.0;
      img.at(ix, iy) = std::min(d1, d2);
    }
  }
  const auto paths = trace_contours(img, 1.0);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_TRUE(p.closed);
}

TEST(TraceContours, EmptyWhenNoCrossing) {
  Image2D img(32, 32, 4.0, 0.0, 0.0);
  for (double& v : img.data()) v = 2.0;
  EXPECT_TRUE(trace_contours(img, 1.0).empty());
}

TEST(GateCdProfile, Statistics) {
  GateCdProfile p;
  p.drawn_cd_nm = 90.0;
  p.slice_cd_nm = {88.0, 90.0, 92.0};
  p.slice_width_nm = 200.0;
  EXPECT_TRUE(p.printed());
  EXPECT_DOUBLE_EQ(p.mean_cd(), 90.0);
  EXPECT_DOUBLE_EQ(p.min_cd(), 88.0);
  EXPECT_DOUBLE_EQ(p.max_cd(), 92.0);
  EXPECT_DOUBLE_EQ(p.residual_nm(), 0.0);
  p.slice_cd_nm.push_back(0.0);  // a pinched slice
  EXPECT_FALSE(p.printed());
  EXPECT_DOUBLE_EQ(p.mean_cd(), 90.0);  // unprinted slices excluded
}

TEST(ExtractGateCd, OnAnalyticValley) {
  // Valley of half-width 45 -> printed CD 90 at every slice.
  const Image2D img = valley_field(45.0, 256, 4.0);
  const Rect gate{-45, -200, 45, 200};
  const GateCdProfile prof = extract_gate_cd(img, 1.0, gate, true);
  EXPECT_TRUE(prof.printed());
  EXPECT_EQ(prof.slice_cd_nm.size(), 7u);
  EXPECT_NEAR(prof.mean_cd(), 90.0, 0.5);
  EXPECT_DOUBLE_EQ(prof.drawn_cd_nm, 90.0);
}

TEST(ExtractGateCd, CustomSliceCount) {
  const Image2D img = valley_field(45.0, 256, 4.0);
  CdExtractOptions opts;
  opts.num_slices = 11;
  const GateCdProfile prof =
      extract_gate_cd(img, 1.0, {-45, -200, 45, 200}, true, opts);
  EXPECT_EQ(prof.slice_cd_nm.size(), 11u);
}

TEST(ExtractGateCd, OnSimulatedLatentImage) {
  LithoSimulator sim;
  std::vector<Rect> lines;
  for (int k = -2; k <= 2; ++k) {
    lines.push_back({k * 250, -500, k * 250 + 90, 500});
  }
  const Rect window{-700, -700, 790, 700};
  const Image2D latent = sim.latent(lines, window, {}, LithoQuality::kStandard);
  const Rect gate{0, -300, 90, 300};  // centre line
  const GateCdProfile prof =
      extract_gate_cd(latent, sim.print_threshold(), gate, true);
  EXPECT_TRUE(prof.printed());
  // Uncorrected 90 nm line: prints, CD within a plausible band.
  EXPECT_GT(prof.mean_cd(), 40.0);
  EXPECT_LT(prof.mean_cd(), 120.0);
  // Mid-line slices vary little.
  EXPECT_LT(prof.max_cd() - prof.min_cd(), 6.0);
}

TEST(ExtractWireCd, StraightWire) {
  const Image2D img = valley_field(60.0, 256, 4.0);
  const Rect wire{-60, -300, 60, 300};
  const auto cd = extract_wire_cd(img, 1.0, wire, true);
  ASSERT_TRUE(cd.has_value());
  EXPECT_NEAR(*cd, 120.0, 1.0);
}

TEST(ExtractWireCd, MissingWireReturnsNull) {
  Image2D img(64, 64, 4.0, -128.0, -128.0);
  for (double& v : img.data()) v = 2.0;  // nothing prints
  EXPECT_FALSE(extract_wire_cd(img, 1.0, {-20, -100, 20, 100}, true));
}

}  // namespace
}  // namespace poc
