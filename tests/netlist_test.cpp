// Tests for the netlist substrate: construction invariants, topological
// utilities, Verilog round-trips, and functional correctness of every
// benchmark generator via logic simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/netlist/generators.h"
#include "src/netlist/netlist.h"
#include "src/netlist/verilog.h"
#include "src/stdcell/cell_spec.h"

namespace poc {
namespace {

/// Reference logic simulator over CellSpec functions.
std::vector<bool> simulate_logic(const Netlist& nl,
                                 const std::vector<bool>& pi_values) {
  const auto specs = standard_cell_specs();
  const auto pis = nl.primary_inputs();
  POC_EXPECTS(pis.size() == pi_values.size());
  std::vector<bool> value(nl.num_nets(), false);
  for (std::size_t i = 0; i < pis.size(); ++i) value[pis[i]] = pi_values[i];
  for (GateIdx g : nl.topological_order()) {
    const GateInst& gate = nl.gate(g);
    const CellSpec& spec = find_spec(specs, gate.cell);
    std::vector<bool> in;
    for (NetIdx n : gate.inputs) in.push_back(value[n]);
    value[gate.output] = spec.eval(in);
  }
  std::vector<bool> out;
  for (NetIdx n : nl.primary_outputs()) out.push_back(value[n]);
  return out;
}

TEST(Netlist, ConstructionInvariants) {
  Netlist nl("t");
  const NetIdx a = nl.add_net("a");
  const NetIdx b = nl.add_net("b");
  const NetIdx y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_output(y);
  EXPECT_THROW(nl.add_net("a"), CheckError);
  nl.add_gate("g0", "NAND2_X1", {a, b}, y);
  EXPECT_THROW(nl.add_gate("g1", "INV_X1", {a}, y), CheckError);  // 2 drivers
  EXPECT_THROW(nl.add_gate("g0", "INV_X1", {a}, b), CheckError);  // dup name
  EXPECT_THROW(nl.add_gate("g2", "INV_X1", {a}, a), CheckError);  // drives PI
  EXPECT_EQ(nl.net(y).driver, nl.gate_index("g0"));
  ASSERT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].second, 0u);
  EXPECT_EQ(nl.net(b).sinks[0].second, 1u);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist nl = make_ripple_adder(4);
  const auto order = nl.topological_order();
  EXPECT_EQ(order.size(), nl.num_gates());
  std::vector<std::size_t> pos(nl.num_gates());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    for (NetIdx in : nl.gate(g).inputs) {
      if (nl.net(in).driver != kNoIndex) {
        EXPECT_LT(pos[nl.net(in).driver], pos[g]);
      }
    }
  }
}

TEST(Netlist, LogicDepthOfChain) {
  Netlist nl("chain");
  NetIdx prev = nl.add_net("in");
  nl.mark_primary_input(prev);
  for (int i = 0; i < 5; ++i) {
    const NetIdx next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), "INV_X1", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  EXPECT_EQ(nl.logic_depth(), 5u);
}

TEST(C17, StructureAndFunction) {
  const Netlist nl = make_c17();
  EXPECT_EQ(nl.num_gates(), 6u);
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  // Spot-check: all inputs 0 -> NAND outputs: g10=1,g11=1,g16=1,g19=1 ->
  // g22 = !(1&1) = 0, g23 = 0.
  const auto out = simulate_logic(nl, {false, false, false, false, false});
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
}

class AdderFunction : public ::testing::TestWithParam<int> {};

TEST_P(AdderFunction, AddsCorrectly) {
  const std::size_t bits = 4;
  const Netlist nl = make_ripple_adder(bits);
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.uniform_int(0, 15));
    const unsigned b = static_cast<unsigned>(rng.uniform_int(0, 15));
    const unsigned cin = static_cast<unsigned>(rng.uniform_int(0, 1));
    // PI order: a0..a3, b0..b3, cin.
    std::vector<bool> pi;
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((a >> i) & 1u);
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((b >> i) & 1u);
    pi.push_back(cin != 0);
    const auto out = simulate_logic(nl, pi);  // s0..s3, cout
    ASSERT_EQ(out.size(), bits + 1);
    unsigned sum = 0;
    for (std::size_t i = 0; i < bits; ++i) sum |= (out[i] ? 1u : 0u) << i;
    sum |= (out[bits] ? 1u : 0u) << bits;
    EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdderFunction, ::testing::Range(1, 6));

class MultiplierFunction : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierFunction, MultipliesCorrectly) {
  const std::size_t bits = 4;
  const Netlist nl = make_array_multiplier(bits);
  EXPECT_EQ(nl.primary_outputs().size(), 2 * bits);
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 8; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.uniform_int(0, 15));
    const unsigned b = static_cast<unsigned>(rng.uniform_int(0, 15));
    std::vector<bool> pi;
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((a >> i) & 1u);
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((b >> i) & 1u);
    const auto out = simulate_logic(nl, pi);
    unsigned prod = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      prod |= (out[i] ? 1u : 0u) << i;
    }
    EXPECT_EQ(prod, a * b) << a << "*" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiplierFunction, ::testing::Range(1, 6));

class ParityFunction : public ::testing::TestWithParam<int> {};

TEST_P(ParityFunction, ComputesParity) {
  const std::size_t bits = 8;
  const Netlist nl = make_parity_tree(bits);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  Rng rng(GetParam() * 7);
  for (int t = 0; t < 10; ++t) {
    std::vector<bool> pi;
    bool expect = false;
    for (std::size_t i = 0; i < bits; ++i) {
      pi.push_back(rng.chance(0.5));
      expect ^= pi.back();
    }
    EXPECT_EQ(simulate_logic(nl, pi)[0], expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParityFunction, ::testing::Range(1, 5));

TEST(Decoder, OneHotOutputs) {
  const std::size_t bits = 3;
  const Netlist nl = make_decoder(bits);
  EXPECT_EQ(nl.primary_outputs().size(), 8u);
  for (unsigned code = 0; code < 8; ++code) {
    std::vector<bool> pi;
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((code >> i) & 1u);
    const auto out = simulate_logic(nl, pi);
    for (unsigned k = 0; k < 8; ++k) {
      EXPECT_EQ(out[k], k == code) << "code " << code << " output " << k;
    }
  }
}

class CarrySelectFunction : public ::testing::TestWithParam<int> {};

TEST_P(CarrySelectFunction, MatchesRippleAdder) {
  const std::size_t bits = 8;
  const Netlist csel = make_carry_select_adder(bits, 3);
  Rng rng(GetParam() * 131);
  for (int t = 0; t < 10; ++t) {
    const unsigned a = static_cast<unsigned>(rng.uniform_int(0, 255));
    const unsigned b = static_cast<unsigned>(rng.uniform_int(0, 255));
    const unsigned cin = static_cast<unsigned>(rng.uniform_int(0, 1));
    std::vector<bool> pi;
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((a >> i) & 1u);
    for (std::size_t i = 0; i < bits; ++i) pi.push_back((b >> i) & 1u);
    pi.push_back(cin != 0);
    const auto out = simulate_logic(csel, pi);
    ASSERT_EQ(out.size(), bits + 1);
    unsigned sum = 0;
    for (std::size_t i = 0; i <= bits; ++i) sum |= (out[i] ? 1u : 0u) << i;
    EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
  }
  // And it is shallower than the equivalent ripple adder.
  EXPECT_LT(csel.logic_depth(), make_ripple_adder(bits).logic_depth() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CarrySelectFunction, ::testing::Range(1, 5));

TEST(RandomLogic, DeterministicAndAcyclic) {
  const Netlist a = make_random_logic(150, 12, 42);
  const Netlist b = make_random_logic(150, 12, 42);
  EXPECT_EQ(verilog_to_string(a), verilog_to_string(b));
  EXPECT_EQ(a.topological_order().size(), a.num_gates());
  EXPECT_GE(a.num_gates(), 150u);
  EXPECT_FALSE(a.primary_outputs().empty());
  EXPECT_GT(a.logic_depth(), 5u);  // the recency bias creates depth
  const Netlist c = make_random_logic(150, 12, 43);
  EXPECT_NE(verilog_to_string(a), verilog_to_string(c));
}

TEST(RandomLogic, OnlyLibraryCells) {
  const Netlist nl = make_random_logic(200, 16, 7);
  const auto specs = standard_cell_specs();
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    EXPECT_NO_THROW(find_spec(specs, nl.gate(g).cell));
    // No duplicated input nets on one gate (would break characterization
    // assumptions).
    const auto& in = nl.gate(g).inputs;
    for (std::size_t i = 0; i < in.size(); ++i) {
      for (std::size_t j = i + 1; j < in.size(); ++j) {
        EXPECT_NE(in[i], in[j]);
      }
    }
  }
}

TEST(Tiled, FunctionMatchesReference) {
  // Reference-simulate the chained tiles: FA carry, XOR, then the
  // NAND3/NOR/INV cluster chain = !( !(x3 x0 c) + x1 ) ... inverted.
  const Netlist nl = make_tiled(9);
  Rng rng(99);
  for (int t = 0; t < 10; ++t) {
    std::vector<bool> pi;
    for (int i = 0; i < 5; ++i) pi.push_back(rng.chance(0.5));
    const bool x0 = pi[0], x1 = pi[1], x2 = pi[2], x3 = pi[3];
    bool chain = pi[4];
    std::vector<bool> expect_pos;
    for (std::size_t tile = 0; tile < 9; ++tile) {
      switch (tile % 3) {
        case 0: {
          const bool sum = x0 ^ x1 ^ chain;
          const bool cout = (x0 && x1) || (chain && (x0 ^ x1));
          if (tile % 24 == 0) expect_pos.push_back(sum);
          chain = cout;
          break;
        }
        case 1:
          chain = x2 ^ chain;
          break;
        default:  // INV(NOR2(NAND3(x3, x0, c), x1)) = !(x3 x0 c) + x1
          chain = !(x3 && x0 && chain) || x1;
          break;
      }
    }
    expect_pos.push_back(chain);
    EXPECT_EQ(simulate_logic(nl, pi), expect_pos);
  }
}

TEST(Tiled, ScalesToRepeatedBlocksDeterministically) {
  const Netlist a = make_tiled(2000);
  // ~16 gates per 3 tiles: the 10k-instance repeated-block chip.
  EXPECT_GT(a.num_gates(), 10000u);
  EXPECT_EQ(a.topological_order().size(), a.num_gates());
  EXPECT_EQ(verilog_to_string(a), verilog_to_string(make_tiled(2000)));
  // Only a handful of distinct cell templates — the whole point: placed
  // windows repeat, so sharded workers hit each other's published results.
  std::vector<std::string> cells;
  for (GateIdx g = 0; g < a.num_gates(); ++g) cells.push_back(a.gate(g).cell);
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  EXPECT_LE(cells.size(), 5u);
}

TEST(Benchmarks, NamedLookup) {
  EXPECT_EQ(make_benchmark("c17").num_gates(), 6u);
  EXPECT_GT(make_benchmark("adder8").num_gates(), 60u);
  EXPECT_GT(make_benchmark("mult4").num_gates(), 100u);
  EXPECT_GE(make_benchmark("rand100").num_gates(), 100u);
  EXPECT_GT(make_benchmark("tiled60").num_gates(), 300u);
  EXPECT_THROW(make_benchmark("nonsense"), CheckError);
  EXPECT_THROW(make_benchmark("tiled"), CheckError);
  EXPECT_THROW(make_benchmark("tiled12x"), CheckError);
}

TEST(Verilog, RoundTripPreservesStructureAndFunction) {
  const Netlist nl = make_ripple_adder(3);
  const std::string text = verilog_to_string(nl);
  const Netlist back = verilog_from_string(text);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.num_nets(), nl.num_nets());
  EXPECT_EQ(back.primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(back.primary_outputs().size(), nl.primary_outputs().size());
  // Same function on a few vectors.
  Rng rng(5);
  for (int t = 0; t < 5; ++t) {
    std::vector<bool> pi;
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
      pi.push_back(rng.chance(0.5));
    }
    EXPECT_EQ(simulate_logic(nl, pi), simulate_logic(back, pi));
  }
  // And the text itself is stable.
  EXPECT_EQ(verilog_to_string(back), text);
}

TEST(Verilog, ParsesCommentsAndThrowsOnGarbage) {
  const std::string src = R"(
// a comment
module t (a, y);
  input a;
  output y;
  INV_X1 g0 (.A(a), .Y(y));
endmodule
)";
  const Netlist nl = verilog_from_string(src);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_THROW(verilog_from_string("module broken"), CheckError);
}

}  // namespace
}  // namespace poc
