// Equivalence fuzz harness for the incremental TimingGraph: random DAG
// netlists (fanout trees, reconvergence) plus random perturbation
// sequences, asserting after every step that the warm incrementally-updated
// graph answers bit-identically to a from-scratch propagation over the same
// state — arrivals, requireds, slacks and top-K paths, at 1 and 4 threads.
// This is the acceptance gate for the worklist engine: any staleness bug
// (under-marking, propagation cut too early, merge-order divergence) shows
// up as a bit difference against the fresh reference.
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/netlist/generators.h"
#include "src/pex/extractor.h"
#include "src/pnr/design.h"
#include "src/sta/service.h"
#include "src/sta/timing_graph.h"
#include "src/stdcell/library.h"

#include <filesystem>

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

bool bits_eq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_node_eq(const NodeTime& a, const NodeTime& b, NetIdx net,
                    const char* what) {
  ASSERT_EQ(a.valid, b.valid) << what << " validity, net " << net;
  ASSERT_TRUE(bits_eq(a.at, b.at)) << what << " at, net " << net << ": "
                                   << a.at << " vs " << b.at;
  ASSERT_TRUE(bits_eq(a.slew, b.slew))
      << what << " slew, net " << net << ": " << a.slew << " vs " << b.slew;
}

void expect_paths_eq(const std::vector<TimingPath>& a,
                     const std::vector<TimingPath>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].endpoint, b[i].endpoint) << "path " << i;
    ASSERT_EQ(a[i].endpoint_rising, b[i].endpoint_rising) << "path " << i;
    ASSERT_TRUE(bits_eq(a[i].arrival, b[i].arrival)) << "path " << i;
    ASSERT_TRUE(bits_eq(a[i].slack, b[i].slack)) << "path " << i;
    ASSERT_EQ(a[i].points.size(), b[i].points.size()) << "path " << i;
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      ASSERT_EQ(a[i].points[p].net, b[i].points[p].net)
          << "path " << i << " point " << p;
      ASSERT_EQ(a[i].points[p].rising, b[i].points[p].rising)
          << "path " << i << " point " << p;
      ASSERT_TRUE(bits_eq(a[i].points[p].arrival, b[i].points[p].arrival))
          << "path " << i << " point " << p;
    }
  }
}

/// Asserts the warm graph's every queryable quantity is bit-identical to
/// `fresh`, a from-scratch graph over the same state.
void expect_equivalent(TimingGraph& warm, TimingGraph& fresh) {
  const Netlist& nl = warm.netlist();
  ASSERT_TRUE(bits_eq(warm.worst_arrival(), fresh.worst_arrival()));
  ASSERT_TRUE(bits_eq(warm.worst_slack(), fresh.worst_slack()));
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    expect_node_eq(warm.arrival(n, true), fresh.arrival(n, true), n, "rise");
    expect_node_eq(warm.arrival(n, false), fresh.arrival(n, false), n, "fall");
    ASSERT_TRUE(bits_eq(warm.required(n, true), fresh.required(n, true)))
        << "req rise, net " << n;
    ASSERT_TRUE(bits_eq(warm.required(n, false), fresh.required(n, false)))
        << "req fall, net " << n;
    ASSERT_TRUE(bits_eq(warm.pin_slack(n), fresh.pin_slack(n)))
        << "pin slack, net " << n;
  }
  const std::vector<Ps> ws = warm.gate_slacks();
  const std::vector<Ps> fs = fresh.gate_slacks();
  ASSERT_EQ(ws.size(), fs.size());
  for (std::size_t g = 0; g < ws.size(); ++g) {
    ASSERT_TRUE(bits_eq(ws[g], fs[g])) << "gate slack, gate " << g;
  }
  expect_paths_eq(warm.top_paths(8), fresh.top_paths(8));
}

DelayAnnotation random_annotation(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> delay(0.8, 1.3);
  std::uniform_real_distribution<double> leak(0.9, 1.2);
  return {delay(rng), delay(rng), leak(rng)};
}

/// Runs `steps` random perturbations (1..max_gates_per_step gate-delay
/// changes each) against a warm graph at `threads`, checking bit-identity
/// with a from-scratch single-threaded reference after every step.
/// Returns the number of perturbation steps executed.
std::size_t run_fuzz(const Netlist& nl, const StaOptions& options,
                     const std::vector<NetParasitics>& parasitics,
                     std::size_t threads, std::uint64_t seed,
                     std::size_t steps, std::size_t max_gates_per_step = 4) {
  std::mt19937_64 rng(seed);
  TimingGraph warm(nl, lib(), options, threads);
  if (!parasitics.empty()) warm.set_parasitics(parasitics);

  std::vector<DelayAnnotation> current(nl.num_gates());
  std::uniform_int_distribution<std::size_t> gate_pick(0, nl.num_gates() - 1);
  std::uniform_int_distribution<std::size_t> count_pick(1, max_gates_per_step);
  for (std::size_t step = 0; step < steps; ++step) {
    std::vector<GateIdx> changed;
    for (std::size_t i = 0; i < count_pick(rng); ++i) {
      const GateIdx g = gate_pick(rng);
      current[g] = random_annotation(rng);
      changed.push_back(g);
    }
    // Alternate the two mutation entry points: the diffing bulk setter and
    // the explicit per-gate update_delays path.
    if (step % 2 == 0) {
      warm.set_annotations(current);
      warm.flush();
    } else {
      for (GateIdx g : changed) warm.set_annotation(g, current[g]);
      warm.update_delays(changed);
    }

    TimingGraph fresh(nl, lib(), options, /*threads=*/1);
    if (!parasitics.empty()) fresh.set_parasitics(parasitics);
    fresh.set_annotations(current);
    expect_equivalent(warm, fresh);
  }
  return steps;
}

StaOptions stressed_corner() {
  StaOptions o;
  o.clock_period = 450.0;
  o.input_slew = 80.0;
  o.po_load_ff = 8.0;
  o.late_derate = 1.08;
  o.path_window = 120.0;
  return o;
}

TEST(StaIncrementalFuzz, RandomDagsBitIdenticalAtOneAndFourThreads) {
  // 2 random DAGs x 2 corners x 2 thread counts x 30 steps = 240 fuzz
  // steps, on top of the structured-netlist suites below.
  std::size_t total = 0;
  for (std::uint64_t design_seed : {7u, 91u}) {
    const Netlist nl = make_random_logic(60, 8, design_seed);
    for (int corner = 0; corner < 2; ++corner) {
      const StaOptions options =
          corner == 0 ? StaOptions{} : stressed_corner();
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        total += run_fuzz(nl, options, {}, threads,
                          /*seed=*/1000 + design_seed + corner, /*steps=*/30);
      }
    }
  }
  EXPECT_GE(total, 200u);
}

TEST(StaIncrementalFuzz, FanoutTreeAndReconvergence) {
  // parity16 is a reconvergent XOR tree; decoder4 a fanout tree.  Larger
  // per-step change sets stress overlapping-cone merging.
  for (const char* name : {"parity16", "decoder4"}) {
    const Netlist nl = make_benchmark(name);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      run_fuzz(nl, {}, {}, threads, /*seed=*/5, /*steps=*/12,
               /*max_gates_per_step=*/8);
    }
  }
}

TEST(StaIncrementalFuzz, WithParasitics) {
  const Netlist nl = make_benchmark("adder8");
  const PlacedDesign design = place_and_route(nl, lib());
  const std::vector<NetParasitics> parasitics =
      Extractor(design.tech).extract_design(design);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    run_fuzz(nl, {}, parasitics, threads, /*seed=*/17, /*steps=*/10);
  }
}

TEST(StaIncrementalFuzz, CornerSwitchesOnWarmGraph) {
  // Re-target the same warm graph across corners mid-stream: set_options
  // must dirty exactly enough for bit-identity with a fresh graph.
  const Netlist nl = make_random_logic(50, 6, 3);
  std::mt19937_64 rng(99);
  TimingGraph warm(nl, lib(), {}, /*threads=*/4);
  std::vector<DelayAnnotation> current(nl.num_gates());
  std::uniform_int_distribution<std::size_t> gate_pick(0, nl.num_gates() - 1);
  const StaOptions corners[] = {StaOptions{}, stressed_corner(),
                                []() {
                                  StaOptions o;
                                  o.clock_period = 600.0;
                                  return o;
                                }()};
  for (std::size_t step = 0; step < 12; ++step) {
    const StaOptions& options = corners[step % 3];
    warm.set_options(options);
    const GateIdx g = gate_pick(rng);
    current[g] = random_annotation(rng);
    warm.set_annotation(g, current[g]);
    warm.update_delays({g});

    TimingGraph fresh(nl, lib(), options, /*threads=*/1);
    fresh.set_annotations(current);
    expect_equivalent(warm, fresh);
  }
}

TEST(StaIncrementalFuzz, FullReportMatchesStatelessEngine) {
  // The warm graph's report() against StaEngine::run — the exact object the
  // flow consumes (endpoints, paths, leakage, gate slacks).
  const Netlist nl = make_benchmark("adder8");
  std::mt19937_64 rng(21);
  TimingGraph warm(nl, lib(), {}, /*threads=*/4);
  std::vector<DelayAnnotation> current(nl.num_gates());
  std::uniform_int_distribution<std::size_t> gate_pick(0, nl.num_gates() - 1);
  StaEngine engine(nl, lib());
  for (std::size_t step = 0; step < 10; ++step) {
    current[gate_pick(rng)] = random_annotation(rng);
    warm.set_annotations(current);
    const StaReport inc = warm.report();
    engine.set_annotations(current);
    const StaReport full = engine.run({});
    ASSERT_TRUE(bits_eq(inc.worst_arrival, full.worst_arrival));
    ASSERT_TRUE(bits_eq(inc.worst_slack, full.worst_slack));
    ASSERT_TRUE(bits_eq(inc.total_leakage_ua, full.total_leakage_ua));
    ASSERT_EQ(inc.endpoints.size(), full.endpoints.size());
    for (std::size_t i = 0; i < inc.endpoints.size(); ++i) {
      ASSERT_EQ(inc.endpoints[i].net, full.endpoints[i].net);
      ASSERT_EQ(inc.endpoints[i].rising, full.endpoints[i].rising);
      ASSERT_TRUE(bits_eq(inc.endpoints[i].arrival, full.endpoints[i].arrival));
      ASSERT_TRUE(bits_eq(inc.endpoints[i].slack, full.endpoints[i].slack));
    }
    expect_paths_eq(inc.paths, full.paths);
    ASSERT_EQ(inc.gate_slack.size(), full.gate_slack.size());
    for (std::size_t g = 0; g < inc.gate_slack.size(); ++g) {
      ASSERT_TRUE(bits_eq(inc.gate_slack[g], full.gate_slack[g]));
    }
  }
}

}  // namespace
}  // namespace poc
