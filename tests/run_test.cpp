// Durable-run subsystem tests: byte-exact serialization and CRC-64, the
// write-ahead RunJournal (replay, checksum/config validation, torn-tail
// sealing, rotation, dedup), cooperative cancellation in the parallel
// engine, the SIGINT/SIGTERM graceful-shutdown bridge, and the flow-level
// resume contract — a killed or cancelled journaled run, resumed at any
// thread count, reproduces the uninterrupted TimingComparison bit for bit
// (EXPECT_EQ on doubles, as in determinism_test).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/disk_store.h"
#include "src/common/error.h"
#include "src/common/fault.h"
#include "src/common/serialize.h"
#include "src/core/flow.h"
#include "src/core/flow_shard.h"
#include "src/netlist/generators.h"
#include "src/par/thread_pool.h"
#include "src/run/coordinator.h"
#include "src/run/journal.h"
#include "src/run/shard.h"
#include "src/run/shutdown.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on teardown.  The kill-resume
/// death tests rely on the ctor wiping and the SIGKILLed child never
/// running the dtor, so the parent finds the child's journal intact.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<fs::path> journal_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Serialization + checksum

TEST(Serialize, RoundTripsEveryTypeBitExactly) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.0);                      // sign bit must survive
  w.f64(0.1 + 0.2);                 // a value with no short decimal form
  w.str("journal");
  w.str("");                        // empty strings are legal

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), 0.1 + 0.2);    // bit pattern, not approximate
  EXPECT_EQ(r.str(), "journal");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, ReaderLatchesInsteadOfThrowingOnTruncation) {
  ByteWriter w;
  w.u64(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // past the end: zero value, latched failure
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // stays failed
  EXPECT_FALSE(r.done());
}

TEST(Serialize, ReaderRejectsOverlongString) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Crc64, MatchesKnownVectorAndSeesBitFlips) {
  // CRC-64/XZ check value for the ASCII string "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(crc64(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0x995DC9BBDF1939FAull);

  std::vector<std::uint8_t> bytes(128);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint64_t base = crc64(bytes);
  bytes[64] ^= 0x01;  // single bit flip
  EXPECT_NE(crc64(bytes), base);
  bytes[64] ^= 0x01;
  EXPECT_EQ(crc64(bytes), base);
  bytes.pop_back();  // truncation
  EXPECT_NE(crc64(bytes), base);
}

// ---------------------------------------------------------------------------
// RunJournal: append / replay / reject

JournalRecord make_record(JournalPhase phase, std::uint64_t index,
                          std::uint64_t salt) {
  JournalRecord rec;
  rec.phase = phase;
  rec.index = index;
  rec.fp = {salt * 1000003u + index, ~index};
  rec.outcome.attempts = 1;
  ByteWriter w;
  w.u64(index);
  w.f64(static_cast<double>(index) * 1.5 + 0.125);
  w.str("payload-" + std::to_string(index));
  rec.payload = w.take();
  return rec;
}

constexpr Fingerprint kConfigA{0x1111, 0x2222};
constexpr Fingerprint kConfigB{0x3333, 0x4444};

TEST(RunJournal, AppendThenReplayAcrossReopen) {
  TempDir dir("poc_run_journal_roundtrip");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  opts.flush_every_records = 2;
  {
    RunJournal j(opts, kConfigA);
    for (std::uint64_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(j.append(make_record(JournalPhase::kOpc, i, 1)));
    }
    // Same-run appends are not served back: replay is a reopen concept.
    EXPECT_EQ(j.find(make_record(JournalPhase::kOpc, 0, 1).fp), nullptr);
    // Duplicate append is dropped.
    EXPECT_FALSE(j.append(make_record(JournalPhase::kOpc, 2, 1)));
    const RunJournal::Stats s = j.stats();
    EXPECT_EQ(s.appended_records, 5u);
    EXPECT_EQ(s.loaded_records, 0u);
  }

  RunJournal j2(opts, kConfigA);
  const RunJournal::Stats s = j2.stats();
  EXPECT_EQ(s.loaded_records, 5u);
  EXPECT_EQ(s.rejected_records, 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const JournalRecord want = make_record(JournalPhase::kOpc, i, 1);
    const JournalRecord* got = j2.find(want.fp);
    ASSERT_NE(got, nullptr) << "record " << i;
    EXPECT_EQ(got->phase, want.phase);
    EXPECT_EQ(got->index, want.index);
    EXPECT_EQ(got->payload, want.payload);
    EXPECT_EQ(got->outcome.attempts, want.outcome.attempts);
  }
  // A replayed-then-recomputed window must not be re-written.
  EXPECT_FALSE(j2.append(make_record(JournalPhase::kOpc, 3, 1)));
  EXPECT_TRUE(j2.issues().empty());

  // The previous active segment was sealed by the reopen.
  bool saw_sealed = false;
  for (const fs::path& p : journal_files(dir.path)) {
    if (p.extension() == ".seg") saw_sealed = true;
  }
  EXPECT_TRUE(saw_sealed);
}

TEST(RunJournal, RejectsSegmentsFromDifferentConfig) {
  TempDir dir("poc_run_journal_config");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  {
    RunJournal j(opts, kConfigA);
    for (std::uint64_t i = 0; i < 3; ++i) {
      j.append(make_record(JournalPhase::kExtract, i, 2));
    }
  }
  RunJournal j2(opts, kConfigB);
  EXPECT_EQ(j2.stats().loaded_records, 0u);
  EXPECT_EQ(j2.find(make_record(JournalPhase::kExtract, 1, 2).fp), nullptr);
  ASSERT_FALSE(j2.issues().empty());
  EXPECT_EQ(j2.issues()[0].code, FaultCode::kJournalMismatch);
  EXPECT_NE(j2.issues()[0].detail.find("config fingerprint"),
            std::string::npos);
}

TEST(RunJournal, TruncatedTailIsRejectedReportedAndSealedAway) {
  TempDir dir("poc_run_journal_trunc");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  fs::path active;
  {
    RunJournal j(opts, kConfigA);
    for (std::uint64_t i = 0; i < 4; ++i) {
      j.append(make_record(JournalPhase::kScan, i, 3));
    }
    j.flush();
  }
  for (const fs::path& p : journal_files(dir.path)) {
    if (p.extension() == ".open") active = p;
  }
  ASSERT_FALSE(active.empty());
  // SIGKILL mid-write: the tail of the last record is missing.
  fs::resize_file(active, fs::file_size(active) - 7);

  RunJournal j2(opts, kConfigA);
  EXPECT_EQ(j2.stats().loaded_records, 3u);
  EXPECT_EQ(j2.stats().rejected_records, 1u);
  ASSERT_FALSE(j2.issues().empty());
  EXPECT_EQ(j2.issues()[0].code, FaultCode::kJournalMismatch);
  EXPECT_NE(j2.issues()[0].detail.find("truncated"), std::string::npos);
  EXPECT_EQ(j2.find(make_record(JournalPhase::kScan, 3, 3).fp), nullptr);
  EXPECT_NE(j2.find(make_record(JournalPhase::kScan, 2, 3).fp), nullptr);

  // The torn record must also be gone from disk (valid-prefix truncation),
  // so a third open replays cleanly.
  RunJournal j3(opts, kConfigA);
  EXPECT_EQ(j3.stats().loaded_records, 3u);
  EXPECT_EQ(j3.stats().rejected_records, 0u);
  EXPECT_TRUE(j3.issues().empty());
}

TEST(RunJournal, BitFlippedRecordIsRejectedOthersSurvive) {
  TempDir dir("poc_run_journal_flip");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  {
    RunJournal j(opts, kConfigA);
    for (std::uint64_t i = 0; i < 4; ++i) {
      j.append(make_record(JournalPhase::kOpc, i, 4));
    }
  }
  fs::path active;
  for (const fs::path& p : journal_files(dir.path)) {
    if (p.extension() == ".open") active = p;
  }
  ASSERT_FALSE(active.empty());
  {
    // Flip one bit inside the last record's body.
    std::fstream f(active, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekg(size - 16);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size - 16);
    f.write(&byte, 1);
  }

  RunJournal j2(opts, kConfigA);
  EXPECT_EQ(j2.stats().loaded_records, 3u);
  EXPECT_GE(j2.stats().rejected_records, 1u);
  bool saw_checksum_issue = false;
  for (const ReplayIssue& issue : j2.issues()) {
    if (issue.code == FaultCode::kJournalMismatch) saw_checksum_issue = true;
  }
  EXPECT_TRUE(saw_checksum_issue);
  EXPECT_NE(j2.find(make_record(JournalPhase::kOpc, 0, 4).fp), nullptr);
}

TEST(RunJournal, RotatesSegmentsAndReplaysAcrossAllOfThem) {
  TempDir dir("poc_run_journal_rotate");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  opts.segment_bytes = 128;       // force a rotation on nearly every append
  opts.flush_every_records = 1;   // rotation is checked after each flush
  {
    RunJournal j(opts, kConfigA);
    for (std::uint64_t i = 0; i < 8; ++i) {
      j.append(make_record(JournalPhase::kExtract, i, 5));
    }
    EXPECT_GE(j.stats().segments, 3u);
  }
  std::size_t sealed = 0;
  for (const fs::path& p : journal_files(dir.path)) {
    if (p.extension() == ".seg") ++sealed;
  }
  EXPECT_GE(sealed, 2u);

  RunJournal j2(opts, kConfigA);
  EXPECT_EQ(j2.stats().loaded_records, 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NE(j2.find(make_record(JournalPhase::kExtract, i, 5).fp), nullptr);
  }
}

TEST(RunJournal, FsyncBatchingHonoursFlushInterval) {
  TempDir dir("poc_run_journal_fsync");
  JournalOptions opts;
  opts.enabled = true;
  opts.path = dir.path.string();
  opts.flush_every_records = 4;
  RunJournal j(opts, kConfigA);
  const std::size_t baseline = j.stats().fsyncs;  // header flush
  for (std::uint64_t i = 0; i < 8; ++i) {
    j.append(make_record(JournalPhase::kOpc, i, 6));
  }
  EXPECT_EQ(j.stats().fsyncs, baseline + 2);  // 8 records / 4 per batch
  j.flush();
  EXPECT_EQ(j.stats().fsyncs, baseline + 2);  // nothing buffered: no-op
}

// ---------------------------------------------------------------------------
// Cooperative cancellation in src/par

TEST(CancelToken, SerialLoopStopsAtChunkBoundary) {
  CancelToken token;
  std::vector<char> ran(12, 0);
  try {
    parallel_for(/*threads=*/1, 12, /*chunk=*/3,
                 [&](std::size_t i) {
                   ran[i] = 1;
                   if (i == 4) token.request_cancel();
                 },
                 &token);
    FAIL() << "expected FlowException(kCancelled)";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.error().code, FaultCode::kCancelled);
  }
  // The chunk in flight ([3,6)) finishes; later chunks never start.
  EXPECT_EQ(ran[4], 1);
  EXPECT_EQ(ran[5], 1);
  EXPECT_EQ(ran[6], 0);
  EXPECT_EQ(ran[11], 0);
}

TEST(CancelToken, ParallelLoopDrainsInFlightAndThrowsCancelled) {
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    CancelToken token;
    token.request_cancel();  // cancelled before the loop even starts
    std::size_t ran = 0;
    try {
      parallel_for(threads, 64, /*chunk=*/1, [&](std::size_t) { ++ran; },
                   &token);
      FAIL() << "expected FlowException(kCancelled)";
    } catch (const FlowException& e) {
      EXPECT_EQ(e.error().code, FaultCode::kCancelled);
    }
    EXPECT_EQ(ran, 0u);
  }
}

TEST(CancelToken, UnsetTokenChangesNothing) {
  CancelToken token;
  std::size_t ran = 0;
  std::mutex m;
  parallel_for(4, 32, /*chunk=*/2,
               [&](std::size_t) {
                 std::lock_guard<std::mutex> lock(m);
                 ++ran;
               },
               &token);
  EXPECT_EQ(ran, 32u);
}

TEST(CancelToken, SetAfterLastChunkDoesNotThrow) {
  CancelToken token;
  // Serial loop: the token trips inside the final chunk, after which no
  // further chunk boundary is crossed — nothing was skipped, no throw.
  std::size_t ran = 0;
  parallel_for(1, 8, /*chunk=*/4,
               [&](std::size_t i) {
                 ++ran;
                 if (i == 7) token.request_cancel();
               },
               &token);
  EXPECT_EQ(ran, 8u);
}

TEST(CancelToken, TryParallelForPropagatesCancellationUncaptured) {
  CancelToken token;
  token.request_cancel();
  EXPECT_THROW(
      try_parallel_for(2, 16, 1, [](std::size_t) {}, "test.cancel", &token),
      FlowException);
}

TEST(GracefulShutdown, SignalTripsGlobalTokenAndCancelsLoops) {
  global_cancel_token().reset();
  {
    ScopedGracefulShutdown guard;
    EXPECT_EQ(ScopedGracefulShutdown::last_signal(), 0);
    std::raise(SIGINT);  // delivered synchronously to this thread
    EXPECT_TRUE(global_cancel_token().cancelled());
    EXPECT_EQ(ScopedGracefulShutdown::last_signal(), SIGINT);
    try {
      parallel_for(1, 4, 1, [](std::size_t) {}, &global_cancel_token());
      FAIL() << "expected cancellation";
    } catch (const FlowException& e) {
      EXPECT_EQ(e.error().code, FaultCode::kCancelled);
    }
  }
  global_cancel_token().reset();
}

// ---------------------------------------------------------------------------
// Flow-level resume: bit-identical TimingComparison

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (fs::temp_directory_path() / "poc_cells_test.lib").string());
  return l;
}

const PlacedDesign& design() {
  static PlacedDesign d = place_and_route(make_c17(), lib());
  return d;
}

FlowOptions run_flow_options(std::size_t threads) {
  FlowOptions opts;
  opts.sta.clock_period = 90.0;
  opts.threads = threads;
  // Cache off so journal replay counters are exact; results are
  // bit-identical either way.
  opts.cache.enabled = false;
  return opts;
}

FlowOptions journaled_options(std::size_t threads, const fs::path& dir) {
  FlowOptions opts = run_flow_options(threads);
  opts.journal.enabled = true;
  opts.journal.path = dir.string();
  return opts;
}

/// Uninterrupted, journal-free ground truth.
const TimingComparison& reference_cmp() {
  static const TimingComparison ref = [] {
    PostOpcFlow flow(design(), lib(), LithoSimulator{}, run_flow_options(1));
    flow.run_opc(OpcMode::kModelBased);
    return flow.compare_timing({});
  }();
  return ref;
}

void expect_same_comparison(const TimingComparison& a,
                            const TimingComparison& b) {
  EXPECT_EQ(a.drawn.worst_slack, b.drawn.worst_slack);
  EXPECT_EQ(a.drawn.worst_arrival, b.drawn.worst_arrival);
  EXPECT_EQ(a.annotated.worst_slack, b.annotated.worst_slack);
  EXPECT_EQ(a.annotated.worst_arrival, b.annotated.worst_arrival);
  EXPECT_EQ(a.annotated.total_leakage_ua, b.annotated.total_leakage_ua);
  EXPECT_EQ(a.worst_slack_change_pct, b.worst_slack_change_pct);
  EXPECT_EQ(a.leakage_change_pct, b.leakage_change_pct);
  ASSERT_EQ(a.annotated.gate_slack.size(), b.annotated.gate_slack.size());
  for (std::size_t g = 0; g < a.annotated.gate_slack.size(); ++g) {
    EXPECT_EQ(a.annotated.gate_slack[g], b.annotated.gate_slack[g]);
  }
  EXPECT_EQ(a.ranks.rank1_changed, b.ranks.rank1_changed);
  EXPECT_EQ(a.ranks.spearman, b.ranks.spearman);
  EXPECT_EQ(a.health.degraded_gates, b.health.degraded_gates);
}

TEST(FlowResume, PartialRunResumesBitIdenticalAtAnyThreadCount) {
  TempDir dir("poc_run_resume_partial");
  // Interrupted run: OPC completes, extraction covers only half the gates
  // (as if cancellation landed mid-phase), then the process "dies".
  {
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     journaled_options(2, dir.path));
    flow.run_opc(OpcMode::kModelBased);
    const std::size_t half = design().netlist.num_gates() / 2;
    std::vector<GateIdx> subset(half);
    for (std::size_t g = 0; g < half; ++g) subset[g] = g;
    flow.extract({}, subset);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     journaled_options(threads, dir.path));
    flow.run_opc(OpcMode::kModelBased);
    const TimingComparison cmp = flow.compare_timing({});
    expect_same_comparison(cmp, reference_cmp());
    EXPECT_TRUE(cmp.health.clean());
    const RunJournal::Stats s = flow.journal_stats();
    EXPECT_GT(s.replayed_hits, 0u) << "resume must replay, not recompute";
  }
}

TEST(FlowResume, BatchWidthIsExcludedFromJournalFingerprints) {
  // ImagingOptions::batch_windows is a pure performance knob, deliberately
  // absent from hash_imaging: a run journaled under one batch width must
  // replay — not recompute, not reject the journal — under any other,
  // because the batched engine is bit-identical to the scalar loop.
  TempDir dir("poc_run_resume_batch");
  {
    FlowOptions opts = journaled_options(2, dir.path);
    opts.imaging.mode = ImagingMode::kSocs;
    opts.imaging.batch_windows = kBatchWindowsAuto;
    PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
    flow.run_opc(OpcMode::kModelBased);
    flow.extract({});
  }
  FlowOptions opts = journaled_options(1, dir.path);
  opts.imaging.mode = ImagingMode::kSocs;
  opts.imaging.batch_windows = 0;  // scalar loop
  PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
  flow.run_opc(OpcMode::kModelBased);
  flow.extract({});
  const RunJournal::Stats s = flow.journal_stats();
  EXPECT_EQ(s.rejected_records, 0u);
  EXPECT_GT(s.replayed_hits, 0u)
      << "a batched-run journal must replay under the scalar loop";
}

TEST(FlowResume, CancelledRunIsResumable) {
  TempDir dir("poc_run_resume_cancel");
  CancelToken token;
  {
    FlowOptions opts = journaled_options(4, dir.path);
    opts.cancel = &token;
    PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
    flow.run_opc(OpcMode::kModelBased);
    token.request_cancel();  // "SIGINT" between OPC and extraction
    try {
      flow.compare_timing({});
      FAIL() << "expected FlowException(kCancelled)";
    } catch (const FlowException& e) {
      EXPECT_EQ(e.error().code, FaultCode::kCancelled);
    }
  }
  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(1, dir.path));
  flow.run_opc(OpcMode::kModelBased);  // replayed from the journal
  const TimingComparison cmp = flow.compare_timing({});
  expect_same_comparison(cmp, reference_cmp());
  EXPECT_GT(flow.journal_stats().replayed_hits, 0u);
}

TEST(FlowResume, KilledAtOpcBoundaryResumesBitIdentical) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("poc_run_resume_kill_opc");
  // The child SIGKILLs itself after the 3rd journal append — mid-OPC, at
  // an exact window boundary (the hook fsyncs first).  No unwinding, no
  // destructor flush: exactly what kill -9 delivers.
  EXPECT_EXIT(
      {
        FlowOptions opts = journaled_options(1, dir.path);
        opts.journal.kill_after_appends = 3;
        PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
        flow.run_opc(OpcMode::kModelBased);
        flow.compare_timing({});
        std::exit(0);  // unreachable: the journal kills us first
      },
      ::testing::KilledBySignal(SIGKILL), "");

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     journaled_options(threads, dir.path));
    flow.run_opc(OpcMode::kModelBased);
    const TimingComparison cmp = flow.compare_timing({});
    expect_same_comparison(cmp, reference_cmp());
    EXPECT_TRUE(cmp.health.clean()) << "boundary kill leaves a clean tail";
    EXPECT_GT(flow.journal_stats().replayed_hits, 0u);
  }
}

TEST(FlowResume, KilledDuringExtractionResumesBitIdentical) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("poc_run_resume_kill_extract");
  const std::size_t opc_windows = design().layout.num_instances();
  EXPECT_EXIT(
      {
        FlowOptions opts = journaled_options(1, dir.path);
        opts.journal.kill_after_appends = opc_windows + 2;  // mid-extract
        PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
        flow.run_opc(OpcMode::kModelBased);
        flow.compare_timing({});
        std::exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");

  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(4, dir.path));
  flow.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = flow.compare_timing({});
  expect_same_comparison(cmp, reference_cmp());
  const RunJournal::Stats s = flow.journal_stats();
  EXPECT_GE(s.replayed_hits, opc_windows + 2);
}

TEST(FlowResume, HotspotScanReplaysFromJournal) {
  TempDir dir("poc_run_resume_scan");
  const std::vector<ProcessCorner> corners = {{"nominal", {0.0, 1.0}}};
  PostOpcFlow::HotspotReport first;
  {
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     journaled_options(2, dir.path));
    flow.run_opc(OpcMode::kModelBased);
    first = flow.scan_hotspots(corners);
  }
  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(1, dir.path));
  flow.run_opc(OpcMode::kModelBased);
  const std::size_t hits_before = flow.journal_stats().replayed_hits;
  const PostOpcFlow::HotspotReport second = flow.scan_hotspots(corners);
  EXPECT_GT(flow.journal_stats().replayed_hits, hits_before);
  EXPECT_EQ(second.windows_checked, first.windows_checked);
  EXPECT_EQ(second.pinches, first.pinches);
  EXPECT_EQ(second.bridges, first.bridges);
  EXPECT_EQ(second.epe_violations, first.epe_violations);
  ASSERT_EQ(second.hotspots.size(), first.hotspots.size());
  for (std::size_t i = 0; i < second.hotspots.size(); ++i) {
    EXPECT_EQ(second.hotspots[i].instance, first.hotspots[i].instance);
    EXPECT_EQ(second.hotspots[i].exposure_name,
              first.hotspots[i].exposure_name);
    EXPECT_EQ(second.hotspots[i].violation.value_nm,
              first.hotspots[i].violation.value_nm);
  }
}

// ---------------------------------------------------------------------------
// Flow-level rejection reporting (never silently skip)

/// Completes a journaled run so the directory holds a full record set.
void complete_journaled_run(const fs::path& dir) {
  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(2, dir));
  flow.run_opc(OpcMode::kModelBased);
  flow.compare_timing({});
}

fs::path active_segment(const fs::path& dir) {
  for (const fs::path& p : journal_files(dir)) {
    if (p.extension() == ".open") return p;
  }
  ADD_FAILURE() << "no active segment in " << dir;
  return {};
}

TEST(FlowJournalRejects, ConfigFingerprintMismatchIsReportedInHealth) {
  TempDir dir("poc_run_reject_config");
  complete_journaled_run(dir.path);

  FlowOptions opts = journaled_options(1, dir.path);
  opts.seed = 43;  // any config change invalidates the journal wholesale
  PostOpcFlow flow(design(), lib(), LithoSimulator{}, opts);
  EXPECT_EQ(flow.journal_stats().loaded_records, 0u);
  const FlowHealth h = flow.health();
  ASSERT_FALSE(h.faults.empty());
  bool saw_mismatch = false;
  for (const FlowHealth::WindowFault& f : h.faults) {
    if (f.phase == "journal" && f.code == FaultCode::kJournalMismatch) {
      saw_mismatch = true;
    }
  }
  EXPECT_TRUE(saw_mismatch);
  // The run itself proceeds on recompute: no replay, correct results.
  flow.run_opc(OpcMode::kModelBased);
  EXPECT_EQ(flow.journal_stats().replayed_hits, 0u);
}

TEST(FlowJournalRejects, TruncatedTailIsReportedAndTimingUnaffected) {
  TempDir dir("poc_run_reject_trunc");
  complete_journaled_run(dir.path);
  const fs::path active = active_segment(dir.path);
  ASSERT_FALSE(active.empty());
  fs::resize_file(active, fs::file_size(active) - 5);

  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(1, dir.path));
  const FlowHealth h0 = flow.health();
  bool saw_mismatch = false;
  for (const FlowHealth::WindowFault& f : h0.faults) {
    if (f.phase == "journal" && f.code == FaultCode::kJournalMismatch) {
      saw_mismatch = true;
    }
  }
  EXPECT_TRUE(saw_mismatch) << "torn tail must be reported, not skipped";
  EXPECT_GE(flow.journal_stats().rejected_records, 1u);

  // Annotated timing is still bit-identical: the torn record is simply
  // recomputed.
  flow.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = flow.compare_timing({});
  EXPECT_EQ(cmp.annotated.worst_slack, reference_cmp().annotated.worst_slack);
  EXPECT_EQ(cmp.worst_slack_change_pct, reference_cmp().worst_slack_change_pct);
}

TEST(FlowJournalRejects, BitFlippedRecordIsReportedAndTimingUnaffected) {
  TempDir dir("poc_run_reject_flip");
  complete_journaled_run(dir.path);
  const fs::path active = active_segment(dir.path);
  ASSERT_FALSE(active.empty());
  {
    std::fstream f(active, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size - 24);
    char byte = 0x55;
    f.write(&byte, 1);
  }

  PostOpcFlow flow(design(), lib(), LithoSimulator{},
                   journaled_options(4, dir.path));
  bool saw_mismatch = false;
  for (const FlowHealth::WindowFault& f : flow.health().faults) {
    if (f.phase == "journal" && f.code == FaultCode::kJournalMismatch) {
      saw_mismatch = true;
    }
  }
  EXPECT_TRUE(saw_mismatch);

  flow.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = flow.compare_timing({});
  EXPECT_EQ(cmp.annotated.worst_slack, reference_cmp().annotated.worst_slack);
  EXPECT_EQ(cmp.annotated.total_leakage_ua,
            reference_cmp().annotated.total_leakage_ua);
}

// ---------------------------------------------------------------------------
// Sharded multi-process runs: partitioning, segment merge, failure
// containment, and the bit-identity contract across worker counts.

TEST(ShardPartition, EveryIndexOwnedByExactlyOneShard) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
      for (const ShardPolicy policy :
           {ShardPolicy::kContiguous, ShardPolicy::kInterleaved}) {
        const std::vector<ShardSpec> shards =
            partition_shards(n, workers, policy);
        ASSERT_EQ(shards.size(), workers);
        std::vector<int> owners(n, 0);
        for (const ShardSpec& s : shards) {
          for (const std::size_t i : shard_indices(s)) {
            ASSERT_LT(i, n);
            ++owners[i];
            EXPECT_TRUE(shard_owns(s, i));
          }
        }
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(owners[i], 1)
              << "index " << i << " n=" << n << " workers=" << workers
              << " policy=" << shard_policy_name(policy);
          // shard_owns must agree with shard_indices for every shard.
          int claims = 0;
          for (const ShardSpec& s : shards) claims += shard_owns(s, i) ? 1 : 0;
          EXPECT_EQ(claims, 1);
        }
      }
    }
  }
}

TEST(ShardPartition, ContiguousShardSizesDifferByAtMostOne) {
  const std::vector<ShardSpec> shards =
      partition_shards(10, 4, ShardPolicy::kContiguous);
  std::size_t min_sz = 10, max_sz = 0;
  for (const ShardSpec& s : shards) {
    const std::size_t sz = static_cast<std::size_t>(s.hi - s.lo);
    min_sz = std::min(min_sz, sz);
    max_sz = std::max(max_sz, sz);
  }
  EXPECT_LE(max_sz - min_sz, 1u);
}

JournalRecord synth_record(JournalPhase phase, std::uint64_t index,
                           std::uint64_t salt) {
  JournalRecord rec;
  rec.phase = phase;
  rec.index = index;
  rec.fp.hi = 0x5EED5EED00000000ull + salt;
  rec.fp.lo = index * 1315423911ull + salt;
  rec.payload.assign(24 + index % 7,
                     static_cast<std::uint8_t>(index * 31 + salt));
  return rec;
}

TEST(ShardMerge, ShuffledArrivalsMergeInGlobalWindowOrderAndDedup) {
  TempDir dir("poc_shard_merge_order");
  Fingerprint cfg;
  cfg.hi = 0xC0FFEEull;
  cfg.lo = 42;

  // Workers publish records in whatever order their threads finished; the
  // merge must impose (phase, global window index) order regardless.  The
  // two workers also overlap on one fingerprint (a window both computed):
  // dedup is first-insert-wins, same as the in-memory cache.
  const std::vector<JournalRecord> w0 = {
      synth_record(JournalPhase::kOpc, 4, 0),
      synth_record(JournalPhase::kOpc, 0, 0),
      synth_record(JournalPhase::kExtract, 2, 0),
  };
  const std::vector<JournalRecord> w1 = {
      synth_record(JournalPhase::kOpc, 3, 1),
      synth_record(JournalPhase::kOpc, 1, 1),
      synth_record(JournalPhase::kOpc, 4, 0),  // duplicate of w0's first
  };
  std::string error;
  ShardSegmentHeader h0{0, 2, ShardPolicy::kInterleaved, 0, 5, cfg};
  ShardSegmentHeader h1{1, 2, ShardPolicy::kInterleaved, 0, 5, cfg};
  ASSERT_TRUE(write_shard_segment((dir.path / shard_segment_name(0)).string(),
                                  h0, w0, &error))
      << error;
  ASSERT_TRUE(write_shard_segment((dir.path / shard_segment_name(1)).string(),
                                  h1, w1, &error))
      << error;

  const MergeResult merge =
      collect_and_merge_segments(dir.path.string(), 2, cfg, {"", ""});
  EXPECT_EQ(merge.duplicate_records, 1u);
  ASSERT_EQ(merge.records.size(), 5u);
  ASSERT_EQ(merge.workers.size(), 2u);
  EXPECT_TRUE(merge.workers[0].segment_found);
  EXPECT_TRUE(merge.workers[1].segment_found);
  EXPECT_FALSE(merge.workers[0].torn);
  for (std::size_t i = 1; i < merge.records.size(); ++i) {
    const JournalRecord& a = merge.records[i - 1];
    const JournalRecord& b = merge.records[i];
    const bool ordered =
        a.phase < b.phase || (a.phase == b.phase && a.index <= b.index);
    EXPECT_TRUE(ordered) << "merge order violated at record " << i;
  }
  // OPC windows 0,1,3,4 then the extraction record — global index order
  // inside each phase, exactly what the single-process merge step emits.
  EXPECT_EQ(merge.records[0].index, 0u);
  EXPECT_EQ(merge.records[1].index, 1u);
  EXPECT_EQ(merge.records[2].index, 3u);
  EXPECT_EQ(merge.records[3].index, 4u);
  EXPECT_EQ(merge.records[4].phase, JournalPhase::kExtract);
}

TEST(ShardMerge, TornSegmentKeepsValidPrefixAndSeals) {
  TempDir dir("poc_shard_torn_seal");
  Fingerprint cfg;
  cfg.hi = 7;
  cfg.lo = 9;
  std::vector<JournalRecord> records;
  for (std::uint64_t i = 0; i < 3; ++i) {
    records.push_back(synth_record(JournalPhase::kOpc, i, 5));
  }
  const std::string path = (dir.path / shard_segment_name(0)).string();
  std::string error;
  ShardSegmentHeader header{0, 1, ShardPolicy::kContiguous, 0, 3, cfg};
  ASSERT_TRUE(write_shard_segment(path, header, records, &error)) << error;

  // Tear mid-frame: the last record loses part of its checksum.
  fs::resize_file(path, fs::file_size(path) - 5);

  std::vector<JournalRecord> out;
  const ShardReadResult torn = read_shard_segment(path, cfg, &out);
  EXPECT_TRUE(torn.header_ok);
  EXPECT_TRUE(torn.config_ok);
  EXPECT_TRUE(torn.torn);
  ASSERT_EQ(out.size(), 2u) << "valid prefix must survive the tear";
  EXPECT_EQ(out[0].fp, records[0].fp);
  EXPECT_EQ(out[1].payload, records[1].payload);

  // Truncate-and-seal, then a clean re-read of the prefix.
  ASSERT_TRUE(seal_shard_segment(path, torn));
  EXPECT_EQ(fs::file_size(path), torn.valid_bytes);
  std::vector<JournalRecord> again;
  const ShardReadResult sealed = read_shard_segment(path, cfg, &again);
  EXPECT_FALSE(sealed.torn);
  EXPECT_EQ(again.size(), 2u);

  // A segment written under different flow options is rejected wholesale.
  Fingerprint other = cfg;
  other.lo ^= 1;
  std::vector<JournalRecord> rejected;
  const ShardReadResult mismatch = read_shard_segment(path, other, &rejected);
  EXPECT_TRUE(mismatch.header_ok);
  EXPECT_FALSE(mismatch.config_ok);
  EXPECT_TRUE(rejected.empty());
}

TEST(DiskCacheStore, ConcurrentPublishIsFirstInsertWins) {
  TempDir dir("poc_disk_store_race");
  Fingerprint fp;
  fp.hi = 0xD15C0000ull;
  fp.lo = 77;
  const std::vector<std::uint8_t> first(256, 0xAA);
  const std::vector<std::uint8_t> second(256, 0xBB);

  // Sequential: the second publish of a fingerprint loses and the winner's
  // bytes stay — entries are immutable once published.
  {
    DiskCacheStore store((dir.path / "seq").string());
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.put(fp, first.data(), first.size()));
    EXPECT_FALSE(store.put(fp, second.data(), second.size()));
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(store.get(fp, &got));
    EXPECT_EQ(got, first);
    EXPECT_EQ(store.counters().publishes, 1u);
    EXPECT_EQ(store.counters().races_lost, 1u);
  }

  // Two writers racing on one fingerprint: exactly one entry appears,
  // whole, and the loser is accounted — never torn, never replaced.
  for (int round = 0; round < 8; ++round) {
    DiskCacheStore store((dir.path / ("race" + std::to_string(round))).string());
    ASSERT_TRUE(store.ok());
    std::atomic<int> wins{0};
    std::thread a([&] {
      if (store.put(fp, first.data(), first.size())) wins.fetch_add(1);
    });
    std::thread b([&] {
      if (store.put(fp, second.data(), second.size())) wins.fetch_add(1);
    });
    a.join();
    b.join();
    EXPECT_EQ(wins.load(), 1);
    const DiskCacheStore::Counters c = store.counters();
    EXPECT_EQ(c.publishes, 1u);
    EXPECT_EQ(c.races_lost, 1u);
    EXPECT_EQ(c.io_errors, 0u);
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(store.get(fp, &got));
    EXPECT_TRUE(got == first || got == second) << "entry must be whole";
  }
}

TEST(ShardFlow, InProcessWorkersBitIdenticalAcrossWorkerCounts) {
  // worker_command unset runs every worker on its own thread — the same
  // shard/segment/merge machinery as fork/exec, and the leg TSan covers.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    TempDir dir("poc_shard_inproc_" + std::to_string(workers));
    ShardFlowOptions so;
    so.workers = workers;
    so.work_dir = dir.path.string();
    const ShardFlowResult result = run_sharded_flow(
        design(), lib(), LithoSimulator{}, run_flow_options(2), so);
    expect_same_comparison(result.comparison, reference_cmp());
    EXPECT_TRUE(result.comparison.health.clean());
    EXPECT_TRUE(result.shard_health.faults.empty());
    EXPECT_EQ(result.residual_windows, 0u)
        << "a clean run must replay every window from the merged journal";
    EXPECT_EQ(result.merge.duplicate_records, 0u);
    ASSERT_EQ(result.merge.workers.size(), workers);
    for (const WorkerSegmentOutcome& wo : result.merge.workers) {
      EXPECT_TRUE(wo.segment_found);
      EXPECT_FALSE(wo.torn);
      EXPECT_GT(wo.records, 0u);
    }
  }
}

TEST(ShardFlow, InterleavedPolicyMatchesContiguous) {
  TempDir dir("poc_shard_interleaved");
  ShardFlowOptions so;
  so.workers = 2;
  so.policy = ShardPolicy::kInterleaved;
  so.work_dir = dir.path.string();
  const ShardFlowResult result = run_sharded_flow(
      design(), lib(), LithoSimulator{}, run_flow_options(1), so);
  expect_same_comparison(result.comparison, reference_cmp());
  EXPECT_TRUE(result.shard_health.faults.empty());
  EXPECT_EQ(result.residual_windows, 0u);
}

TEST(ShardFlow, SharedDiskCachePublishesWindowEntries) {
  TempDir dir("poc_shard_diskcache");
  FlowOptions base = run_flow_options(2);
  base.cache.enabled = true;  // the disk tier hangs off the window caches
  ShardFlowOptions so;
  so.workers = 2;
  so.work_dir = dir.path.string();
  const ShardFlowResult result =
      run_sharded_flow(design(), lib(), LithoSimulator{}, base, so);
  expect_same_comparison(result.comparison, reference_cmp());
  // Workers spilled completed windows into the shared content-addressed
  // store under <work_dir>/cache — that is what a second worker (or a
  // rerun) hits instead of recomputing.
  EXPECT_TRUE(fs::exists(dir.path / "cache" / "opc"));
  EXPECT_FALSE(fs::is_empty(dir.path / "cache" / "opc"));
}

TEST(ShardFlow, TornWorkerSegmentRecomputesResidualBitIdentical) {
  TempDir dir("poc_shard_torn_residual");
  const std::vector<ShardSpec> shards = partition_shards(
      design().layout.num_instances(), 2, ShardPolicy::kContiguous);
  for (const ShardSpec& spec : shards) {
    ShardWorkerOptions wo;
    wo.spec = spec;
    wo.work_dir = dir.path.string();
    ASSERT_TRUE(run_shard_worker(design(), lib(), LithoSimulator{},
                                 run_flow_options(2), wo));
  }

  // Tear worker 1's published segment mid-frame and delete its private
  // journal, so neither the tail record nor salvage can save it — the
  // coordinator must recompute those windows in the final pass.
  const fs::path seg1 = dir.path / shard_segment_name(1);
  ASSERT_TRUE(fs::exists(seg1));
  fs::resize_file(seg1, fs::file_size(seg1) - 7);
  fs::remove_all(dir.path / "w01");

  Fingerprint config_fp;
  {
    PostOpcFlow probe(design(), lib(), LithoSimulator{}, run_flow_options(1));
    config_fp = probe.config_fingerprint();
  }
  const MergeResult merge =
      collect_and_merge_segments(dir.path.string(), 2, config_fp, {"", ""});
  ASSERT_EQ(merge.workers.size(), 2u);
  EXPECT_FALSE(merge.workers[0].torn);
  EXPECT_TRUE(merge.workers[1].torn);
  EXPECT_GT(merge.records.size(), 0u);

  std::string error;
  ASSERT_TRUE(write_merged_journal((dir.path / "merged").string(), config_fp,
                                   merge.records, &error))
      << error;
  PostOpcFlow fin(design(), lib(), LithoSimulator{},
                  journaled_options(2, dir.path / "merged"));
  fin.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = fin.compare_timing({});
  expect_same_comparison(cmp, reference_cmp());
  EXPECT_TRUE(cmp.health.clean());
  const RunJournal::Stats s = fin.journal_stats();
  EXPECT_GT(s.replayed_hits, 0u) << "surviving records must replay";
  EXPECT_GT(s.appended_records, 0u)
      << "the torn-off windows must recompute as residual work";

  // Losing the segment entirely (worker never published, no private
  // journal either) degrades further but stays bit-identical: every one
  // of that worker's windows becomes residual work.
  fs::remove(seg1);
  const MergeResult merge2 =
      collect_and_merge_segments(dir.path.string(), 2, config_fp, {"", ""});
  EXPECT_FALSE(merge2.workers[1].segment_found);
  EXPECT_LT(merge2.records.size(), merge.records.size() + 1);
  ASSERT_TRUE(write_merged_journal((dir.path / "merged2").string(), config_fp,
                                   merge2.records, &error))
      << error;
  PostOpcFlow fin2(design(), lib(), LithoSimulator{},
                   journaled_options(1, dir.path / "merged2"));
  fin2.run_opc(OpcMode::kModelBased);
  expect_same_comparison(fin2.compare_timing({}), reference_cmp());
  EXPECT_GE(fin2.journal_stats().appended_records,
            s.appended_records);
}

// ---------------------------------------------------------------------------
// PR 10: self-healing sharded runs + injectable I/O faults

TEST(ShardResidual, ResidualPartitionCoversResidueExactlyOnce) {
  // Contiguous dead shard [20,60): the residual [33,60) re-partitioned
  // across two fresh worker ids covers each residual index exactly once
  // (sorted-equal against the expected set rules out both gaps and
  // overlaps), nothing outside the range.
  ShardSpec dead;
  dead.worker = 1;
  dead.workers = 3;
  dead.policy = ShardPolicy::kContiguous;
  dead.lo = 20;
  dead.hi = 60;
  {
    const std::vector<ShardSpec> subs =
        partition_residual_range(dead, 33, 60, {5, 6});
    ASSERT_EQ(subs.size(), 2u);
    std::vector<std::size_t> covered;
    for (const ShardSpec& sub : subs) {
      EXPECT_EQ(sub.policy, dead.policy);
      const std::vector<std::size_t> idx = shard_indices(sub);
      EXPECT_FALSE(idx.empty()) << "empty sub-shards must be dropped";
      covered.insert(covered.end(), idx.begin(), idx.end());
    }
    std::sort(covered.begin(), covered.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 33; i < 60; ++i) expected.push_back(i);
    EXPECT_EQ(covered, expected);
  }

  // Interleaved: the sub-shards keep walking the dead worker's stride and
  // residue class even though their own worker ids differ.
  ShardSpec idead;
  idead.worker = 1;
  idead.workers = 4;
  idead.policy = ShardPolicy::kInterleaved;
  idead.lo = 0;
  idead.hi = 101;
  {
    const std::vector<ShardSpec> subs =
        partition_residual_range(idead, 40, 101, {4, 5, 6});
    ASSERT_FALSE(subs.empty());
    std::vector<std::size_t> covered;
    for (const ShardSpec& sub : subs) {
      EXPECT_EQ(shard_residue_class(sub), 1u)
          << "sub-shards must keep the dead worker's residue class";
      const std::vector<std::size_t> idx = shard_indices(sub);
      covered.insert(covered.end(), idx.begin(), idx.end());
    }
    std::sort(covered.begin(), covered.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 40; i < 101; ++i) {
      if (i % 4 == 1) expected.push_back(i);
    }
    EXPECT_EQ(covered, expected);
  }

  // An empty residual range needs no sub-shards.
  EXPECT_TRUE(partition_residual_range(dead, 42, 42, {9}).empty());
}

TEST(ShardStats, TornStatsFilesClassifyInsteadOfFailing) {
  TempDir dir("poc_shard_stats_torn");
  const auto write_file = [&](const std::string& name,
                              const std::string& content) {
    std::ofstream out(dir.path / name, std::ios::binary);
    out << content;
    return (dir.path / name).string();
  };

  // Missing file: absent, nothing else claimed.
  EXPECT_FALSE(parse_shard_stats((dir.path / "none").string()).present);

  // Heartbeats only — a worker killed mid-run: present, not complete, the
  // highest heartbeat survives.
  const ShardWorkerStats hb =
      parse_shard_stats(write_file("hb_only", "hb 0\nhb 4\nhb 9\n"));
  EXPECT_TRUE(hb.present);
  EXPECT_FALSE(hb.complete);
  EXPECT_EQ(hb.last_heartbeat, 9u);

  // A file torn mid-write with no newline at all parses as present/empty.
  const ShardWorkerStats torn_head = parse_shard_stats(write_file("torn0", "hb"));
  EXPECT_TRUE(torn_head.present);
  EXPECT_EQ(torn_head.last_heartbeat, 0u);

  // Torn final block: the un-newline-terminated tail line is dropped, a
  // malformed value line is skipped, everything before still parses.
  const ShardWorkerStats torn = parse_shard_stats(write_file(
      "torn1",
      "hb 3\nworker 1\nwindows 17\nbogus notanumber\nwall_ms 12.5\nrecords 2"));
  EXPECT_TRUE(torn.present);
  EXPECT_FALSE(torn.complete) << "no insertions line = no complete block";
  EXPECT_EQ(torn.worker, 1u);
  EXPECT_EQ(torn.windows, 17u);
  EXPECT_DOUBLE_EQ(torn.wall_ms, 12.5);
  EXPECT_EQ(torn.records, 0u) << "the torn tail line must be dropped";
  EXPECT_EQ(torn.last_heartbeat, 3u);

  // Complete block: every field lands, heartbeat lines coexist.
  const ShardWorkerStats full = parse_shard_stats(write_file(
      "full",
      "hb 2\nworker 3\nwindows 10\ngates 5\nrecords 15\nwall_ms 3.25\n"
      "maxrss_kb 1000\nmem_hits 1\ndisk_hits 2\nmisses 4\ninsertions 6\n"));
  EXPECT_TRUE(full.present);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.worker, 3u);
  EXPECT_EQ(full.windows, 10u);
  EXPECT_EQ(full.gates, 5u);
  EXPECT_EQ(full.records, 15u);
  EXPECT_DOUBLE_EQ(full.wall_ms, 3.25);
  EXPECT_EQ(full.maxrss_kb, 1000u);
  EXPECT_EQ(full.mem_hits, 1u);
  EXPECT_EQ(full.disk_hits, 2u);
  EXPECT_EQ(full.misses, 4u);
  EXPECT_EQ(full.insertions, 6u);
}

// TSan stretches a window's wall time 5-20x, and on a single-vCPU gate a
// no-progress timeout that is comfortable natively will stall-kill
// *healthy* workers mid-window.  The injected stall stays silent forever,
// so a longer timeout only delays detection — it can never miss it.
#if defined(__SANITIZE_THREAD__)
#define POC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POC_TSAN_BUILD 1
#endif
#endif
#ifndef POC_TSAN_BUILD
#define POC_TSAN_BUILD 0
#endif
constexpr std::uint64_t kSelfHealTimeoutMs = POC_TSAN_BUILD ? 20000 : 2500;

TEST(ShardSelfHeal, StalledWorkerDetectedRespawnedResumesBitIdentical) {
  // A worker that hangs mid-run (deterministic stall hook after its first
  // journal append) must be detected via its silent heartbeat channel,
  // killed, and respawned; the respawn resumes from the sealed private
  // journal and the whole run stays bit-identical to the unfaulted
  // single-worker reference — at 2 and at 4 workers.
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    TempDir dir("poc_shard_selfheal_" + std::to_string(workers));
    ShardFlowOptions so;
    so.workers = workers;
    so.work_dir = dir.path.string();
    so.watchdog.enabled = true;
    so.watchdog.no_progress_timeout_ms = kSelfHealTimeoutMs;
    so.watchdog.poll_interval_ms = 25;
    so.watchdog.max_respawns = 3;
    so.watchdog.backoff_initial_ms = 10;
    so.watchdog.backoff_max_ms = 50;
    so.stall_worker = 0;
    so.stall_after_appends = 1;
    so.stall_once = true;  // the respawned attempt completes

    const ShardFlowResult result = run_sharded_flow(
        design(), lib(), LithoSimulator{}, run_flow_options(1), so);

    expect_same_comparison(result.comparison, reference_cmp());
    EXPECT_TRUE(result.comparison.health.clean())
        << "shard interventions must never leak into the comparison";
    for (const WorkerExit& ex : result.exits) {
      EXPECT_TRUE(ex.ok()) << "worker " << ex.worker;
    }
    EXPECT_EQ(result.redistributed_windows, 0u)
        << "a successful respawn needs no redistribution";

    std::size_t stall_kills = 0;
    std::size_t respawns = 0;
    for (const WorkerIntervention& iv : result.interventions) {
      if (iv.worker != 0) continue;
      stall_kills += iv.kind == WorkerIntervention::Kind::kStallKilled;
      respawns += iv.kind == WorkerIntervention::Kind::kRespawned;
    }
    EXPECT_GE(stall_kills, 1u);
    EXPECT_GE(respawns, 1u);

    bool stall_reported = false;
    for (const FlowHealth::WindowFault& f : result.shard_health.faults) {
      EXPECT_EQ(f.phase, "shard");
      EXPECT_FALSE(f.degraded);
      if (f.index == 0 && f.code == FaultCode::kStalled && f.recovered) {
        stall_reported = true;
      }
    }
    EXPECT_TRUE(stall_reported)
        << "the healed stall must surface as a recovered kStalled fault";

    ASSERT_EQ(result.worker_stats.size(), workers);
    for (const ShardWorkerStats& stats : result.worker_stats) {
      EXPECT_TRUE(stats.present);
      EXPECT_TRUE(stats.complete);
    }
  }
}

TEST(ShardSelfHeal, RetriesExhaustedRedistributeResidualAcrossSurvivors) {
  // A worker that stalls on every attempt burns its respawn budget; the
  // coordinator then re-partitions its unfinished window range across
  // fresh sub-shards run by surviving capacity — and the result is still
  // bit-identical.
  TempDir dir("poc_shard_redistribute");
  ShardFlowOptions so;
  so.workers = 2;
  so.work_dir = dir.path.string();
  so.watchdog.enabled = true;
  so.watchdog.no_progress_timeout_ms = kSelfHealTimeoutMs;
  so.watchdog.poll_interval_ms = 25;
  so.watchdog.max_respawns = 1;
  so.watchdog.backoff_initial_ms = 10;
  so.watchdog.backoff_max_ms = 50;
  so.stall_worker = 0;
  so.stall_after_appends = 1;
  so.stall_once = false;  // re-stall every attempt: the budget must run out

  const ShardFlowResult result = run_sharded_flow(
      design(), lib(), LithoSimulator{}, run_flow_options(1), so);

  expect_same_comparison(result.comparison, reference_cmp());
  EXPECT_GT(result.redistributed_windows, 0u);

  // Worker 0's final exit failed; the redistribution sub-shard (id >= 2)
  // ran and completed.
  ASSERT_GE(result.exits.size(), 3u);
  bool w0_failed = false;
  bool sub_shard_ok = false;
  for (const WorkerExit& ex : result.exits) {
    if (ex.worker == 0) w0_failed = !ex.ok();
    if (ex.worker >= 2 && ex.ok()) sub_shard_ok = true;
  }
  EXPECT_TRUE(w0_failed);
  EXPECT_TRUE(sub_shard_ok);

  std::size_t stall_kills = 0;
  std::size_t respawns = 0;
  std::size_t exhausted = 0;
  for (const WorkerIntervention& iv : result.interventions) {
    if (iv.worker != 0) continue;
    stall_kills += iv.kind == WorkerIntervention::Kind::kStallKilled;
    respawns += iv.kind == WorkerIntervention::Kind::kRespawned;
    exhausted += iv.kind == WorkerIntervention::Kind::kRetriesExhausted;
  }
  EXPECT_GE(stall_kills, 2u) << "both attempts must be stall-killed";
  EXPECT_GE(respawns, 1u);
  EXPECT_EQ(exhausted, 1u);

  bool redistribution_reported = false;
  for (const FlowHealth::WindowFault& f : result.shard_health.faults) {
    if (f.index == 0 && f.code == FaultCode::kStalled && f.recovered &&
        f.origin.find("redistributed") != std::string::npos) {
      redistribution_reported = true;
    }
  }
  EXPECT_TRUE(redistribution_reported);

  // Positional stats: two originals plus the sub-shard(s).
  EXPECT_GT(result.worker_stats.size(), 2u);
}

TEST(FlowJournalFaults, StickyEnospcKeepsResultsLosesDurabilityOnly) {
  // Every journal write fails with ENOSPC for the whole run: the flow must
  // complete bit-identically (the journal is a pure durability layer) and
  // report the lost durability as a degraded phase-"journal" health entry.
  TempDir dir("poc_run_journal_enospc");
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kIoEnospc, fault::Domain::kJournalIo, fault::kAnyIndex});
  fault::configure(cfg);
  TimingComparison cmp;
  FlowHealth health;
  {
    PostOpcFlow flow(design(), lib(), LithoSimulator{},
                     journaled_options(2, dir.path));
    flow.run_opc(OpcMode::kModelBased);
    cmp = flow.compare_timing({});
    health = flow.health();
  }
  fault::reset();

  expect_same_comparison(cmp, reference_cmp());
  EXPECT_TRUE(cmp.health.degraded_gates.empty());
  bool reported = false;
  for (const FlowHealth::WindowFault& f : health.faults) {
    if (f.phase == "journal" && f.code == FaultCode::kJournalIo &&
        f.degraded) {
      reported = true;
    }
  }
  EXPECT_TRUE(reported)
      << "an undurable run must carry a degraded journal health entry";

  // Whatever the failed appends left on disk must not mislead a later run:
  // it replays what is valid, recomputes the rest, same bits.
  PostOpcFlow again(design(), lib(), LithoSimulator{},
                    journaled_options(1, dir.path));
  again.run_opc(OpcMode::kModelBased);
  expect_same_comparison(again.compare_timing({}), reference_cmp());
}

TEST(FlowCacheFaults, DiskTierEioDegradesToMemoryTierBitIdentical) {
  // EIO on the first disk-cache publish takes the disk tier down; the
  // memory tier keeps serving alone.  Results and the memory-tier cache
  // accounting must be exactly those of a run that never had a disk tier.
  TempDir dir("poc_run_cache_eio");
  FlowOptions mem = run_flow_options(1);
  mem.cache.enabled = true;
  PostOpcFlow memory_only(design(), lib(), LithoSimulator{}, mem);
  memory_only.run_opc(OpcMode::kModelBased);
  const TimingComparison mem_cmp = memory_only.compare_timing({});

  FlowOptions dsk = run_flow_options(1);
  dsk.cache.enabled = true;
  dsk.cache.disk_path = (dir.path / "cache").string();
  fault::Config cfg;
  cfg.enabled = true;
  cfg.targets.push_back(
      {fault::Kind::kIoEio, fault::Domain::kDiskCacheIo, fault::kAnyIndex});
  fault::configure(cfg);
  PostOpcFlow faulted(design(), lib(), LithoSimulator{}, dsk);
  faulted.run_opc(OpcMode::kModelBased);
  const TimingComparison fault_cmp = faulted.compare_timing({});
  const FlowHealth health = faulted.health();
  fault::reset();

  expect_same_comparison(fault_cmp, reference_cmp());
  expect_same_comparison(fault_cmp, mem_cmp);

  const PostOpcFlow::FlowCacheCounters cm = memory_only.cache_counters();
  const PostOpcFlow::FlowCacheCounters cf = faulted.cache_counters();
  const auto expect_same_counters = [](const CacheCounters& a,
                                       const CacheCounters& b,
                                       const char* which) {
    EXPECT_EQ(a.hits, b.hits) << which;
    EXPECT_EQ(a.misses, b.misses) << which;
    EXPECT_EQ(a.insertions, b.insertions) << which;
    EXPECT_EQ(a.disk_hits, 0u) << which
                               << ": a downed tier must serve nothing";
  };
  expect_same_counters(cf.opc, cm.opc, "opc");
  expect_same_counters(cf.latent, cm.latent, "latent");
  expect_same_counters(cf.orc, cm.orc, "orc");

  bool cache_fault = false;
  for (const FlowHealth::WindowFault& f : health.faults) {
    if (f.phase == "cache" && f.code == FaultCode::kCacheIo) {
      cache_fault = true;
    }
  }
  EXPECT_TRUE(cache_fault)
      << "the tier-down must surface as a phase-\"cache\" health entry";
}

TEST(SupervisorSignals, ForwardsFirstSignalAndEscalatesRepeats) {
  // Leg 1: one SIGTERM is forwarded to every live worker; default-handler
  // workers die by that signal, nothing escalates.
  {
    std::vector<WorkerCommand> cmds;
    cmds.push_back({0, {"/bin/sh", "-c", "sleep 30"}});
    cmds.push_back({1, {"/bin/sh", "-c", "sleep 30"}});
    SupervisorOptions so;
    so.watchdog = true;
    so.no_progress_timeout_ms = 600000;  // the watchdog must stay out
    so.poll_interval_ms = 10;
    so.max_respawns = 0;
    so.forward_signals = true;
    std::atomic<int> probes{0};
    so.progress = [&probes](std::uint32_t) -> std::uint64_t {
      // The probe doubles as a deterministic tick source: a few ticks in
      // (workers long since spawned), the "user" hits ctrl-C once.
      if (probes.fetch_add(1) == 6) (void)std::raise(SIGTERM);
      return 1;
    };
    const SupervisionResult r = supervise_worker_processes(cmds, so);
    EXPECT_EQ(r.forwarded_signal, SIGTERM);
    ASSERT_EQ(r.exits.size(), 2u);
    for (const WorkerExit& ex : r.exits) {
      EXPECT_TRUE(ex.spawned);
      EXPECT_EQ(ex.signal, SIGTERM) << "worker " << ex.worker;
    }
    std::size_t forwarded = 0;
    std::size_t escalated = 0;
    for (const WorkerIntervention& iv : r.interventions) {
      forwarded += iv.kind == WorkerIntervention::Kind::kSignalForwarded;
      escalated += iv.kind == WorkerIntervention::Kind::kSignalEscalated;
    }
    EXPECT_EQ(forwarded, 2u);
    EXPECT_EQ(escalated, 0u);
  }

  // Leg 2: a TERM-immune worker ignores the forwarded signal; the second
  // signal escalates to SIGKILL.  Back-to-back raises must escalate in
  // steps, not collapse into one delivery.
  {
    std::vector<WorkerCommand> cmds;
    cmds.push_back({0, {"/bin/sh", "-c", "trap '' TERM; sleep 30"}});
    SupervisorOptions so;
    so.watchdog = true;
    so.no_progress_timeout_ms = 600000;
    so.poll_interval_ms = 10;
    so.max_respawns = 0;
    so.forward_signals = true;
    std::atomic<int> probes{0};
    so.progress = [&probes](std::uint32_t) -> std::uint64_t {
      if (probes.fetch_add(1) == 6) {
        (void)std::raise(SIGTERM);
        (void)std::raise(SIGTERM);
      }
      return 1;
    };
    const SupervisionResult r = supervise_worker_processes(cmds, so);
    EXPECT_EQ(r.forwarded_signal, SIGTERM);
    ASSERT_EQ(r.exits.size(), 1u);
    EXPECT_EQ(r.exits[0].signal, SIGKILL);
    std::size_t forwarded = 0;
    std::size_t escalated = 0;
    for (const WorkerIntervention& iv : r.interventions) {
      forwarded += iv.kind == WorkerIntervention::Kind::kSignalForwarded;
      escalated += iv.kind == WorkerIntervention::Kind::kSignalEscalated;
    }
    EXPECT_EQ(forwarded, 1u);
    EXPECT_EQ(escalated, 1u);
  }
}

}  // namespace
}  // namespace poc
