// Tests for design-driven metrology: plan generation from the design
// database, CD-SEM emulation, and metrology-driven dose calibration of the
// OPC model.
#include <algorithm>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "src/metro/metrology.h"
#include "src/netlist/generators.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

class MetroFixture : public ::testing::Test {
 protected:
  static PostOpcFlow& flow() {
    static Netlist nl = make_c17();
    static PlacedDesign design = place_and_route(nl, lib());
    static std::unique_ptr<PostOpcFlow> instance = [] {
      auto f = std::make_unique<PostOpcFlow>(design, lib());
      f->run_opc(OpcMode::kModelBased);
      return f;
    }();
    return *instance;
  }
};

TEST_F(MetroFixture, PlanCoversDesignDeterministically) {
  const MetrologyPlan full = design_driven_plan(flow().design(), 1000);
  // c17: 6 NAND2 x 4 devices.
  EXPECT_EQ(full.sites.size(), 24u);
  for (const MeasurementSite& s : full.sites) {
    EXPECT_LT(s.gate, 6u);
    EXPECT_DOUBLE_EQ(s.target_cd_nm, 90.0);
    EXPECT_NE(s.device.find("/M"), std::string::npos);
    // Coordinates come from the design database.
    EXPECT_TRUE(flow().design().layout.extent().contains(s.location));
  }
  // Subsampling is even and deterministic.
  const MetrologyPlan sub = design_driven_plan(flow().design(), 8);
  EXPECT_EQ(sub.sites.size(), 8u);
  const MetrologyPlan sub2 = design_driven_plan(flow().design(), 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sub.sites[i].device, sub2.sites[i].device);
  }
}

TEST_F(MetroFixture, CdSemMeasuresSiliconWithNoise) {
  const MetrologyPlan plan = design_driven_plan(flow().design(), 24);
  CdSemParams params;
  params.noise_sigma_nm = 0.5;
  Rng rng(99);
  const auto meas = simulate_cdsem(flow(), plan, {0.0, 1.0}, params, rng);
  ASSERT_EQ(meas.size(), 24u);
  // Measurements sit near the silicon CDs (~87 nm with default mismatch),
  // not at the drawn target.
  double mean = 0.0;
  for (const auto& m : meas) mean += m.measured_cd_nm;
  mean /= static_cast<double>(meas.size());
  EXPECT_NEAR(mean, 87.0, 1.5);
  // Noise makes repeated runs differ, but deterministically per seed.
  Rng rng_b(100);
  const auto meas_b = simulate_cdsem(flow(), plan, {0.0, 1.0}, params, rng_b);
  EXPECT_NE(meas[0].measured_cd_nm, meas_b[0].measured_cd_nm);
  Rng rng_c(99);
  const auto meas_c = simulate_cdsem(flow(), plan, {0.0, 1.0}, params, rng_c);
  EXPECT_DOUBLE_EQ(meas[0].measured_cd_nm, meas_c[0].measured_cd_nm);
}

TEST_F(MetroFixture, ZeroNoiseMatchesExtractionExactly) {
  const MetrologyPlan plan = design_driven_plan(flow().design(), 4);
  CdSemParams params;
  params.noise_sigma_nm = 0.0;
  Rng rng(1);
  const auto meas = simulate_cdsem(flow(), plan, {0.0, 1.0}, params, rng);
  const auto ext = flow().extract({0.0, 1.0});
  for (const auto& m : meas) {
    bool found = false;
    for (const DeviceCd& dev : ext[m.site.gate].devices) {
      const std::string ref = flow().design().netlist.gate(m.site.gate).name +
                              "/" + dev.device;
      if (ref == m.site.device) {
        EXPECT_DOUBLE_EQ(m.measured_cd_nm, dev.profile.mean_cd());
        found = true;
      }
    }
    EXPECT_TRUE(found) << m.site.device;
  }
}

TEST_F(MetroFixture, DoseCalibrationShrinksModelError) {
  const MetrologyPlan plan = design_driven_plan(flow().design(), 12);
  CdSemParams params;
  params.noise_sigma_nm = 0.3;
  Rng rng(7);
  const auto meas = simulate_cdsem(flow(), plan, {0.0, 1.0}, params, rng);
  const CalibrationResult cal = calibrate_model_dose(flow(), meas);
  // With the default mismatch, silicon prints ~3 nm narrower than the
  // model predicts; calibration raises the model dose to compensate.
  EXPECT_GT(cal.mean_error_before_nm, 1.5);
  EXPECT_GT(cal.dose_correction, 1.0);
  EXPECT_LT(std::abs(cal.mean_error_after_nm),
            std::abs(cal.mean_error_before_nm) / 4.0);
  EXPECT_LT(std::abs(cal.mean_error_after_nm), 0.5);
}

TEST_F(MetroFixture, CalibrationRejectsEmptyMeasurements) {
  EXPECT_THROW(calibrate_model_dose(flow(), {}), CheckError);
}

}  // namespace
}  // namespace poc
