// Tests for the SOCS fast imaging path (src/litho/tcc.h): TCC operator
// properties (Hermitian, PSD, trace), the Gram-factorized eigendecomposition
// against the explicit operator, kernel truncation behaviour, and the
// headline accuracy contract — SOCS CDs within 0.1 nm of the Abbe reference
// at nominal conditions across iso/dense pitches (and within a relaxed
// budget under defocus and aberrations).
#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cdx/contour.h"
#include "src/common/rng.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"
#include "src/litho/optics.h"
#include "src/litho/pupil_cache.h"
#include "src/litho/simulator.h"
#include "src/litho/tcc.h"

namespace poc {
namespace {

/// Small spectral layout for the explicit-operator property tests (the
/// imaging path itself uses much larger grids through the Gram route).
SpectralGrid small_grid() {
  // Steps matching a 256-pixel, 8 nm window: df = 1/2048 cycles/nm; the
  // band covers the pupil support for the default optics.
  return SpectralGrid{1.0 / 2048.0, 1.0 / 2048.0, 10, 10};
}

double max_abs(const std::vector<Cplx>& v) {
  double m = 0.0;
  for (const Cplx& c : v) m = std::max(m, std::abs(c));
  return m;
}

TEST(Tcc, MatrixIsHermitian) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const std::vector<Cplx> t = tcc_matrix(opt, source, 80.0, grid);
  const std::size_t n = grid.size();
  ASSERT_EQ(t.size(), n * n);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(t[i * n + i].imag(), 0.0, 1e-15);
    EXPECT_GE(t[i * n + i].real(), -1e-15);  // diagonal of a PSD operator
    for (std::size_t j = i + 1; j < n; ++j) {
      worst = std::max(worst,
                       std::abs(t[i * n + j] - std::conj(t[j * n + i])));
    }
  }
  EXPECT_LT(worst, 1e-14);
}

TEST(Tcc, MatrixIsPositiveSemidefinite) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const std::vector<Cplx> t = tcc_matrix(opt, source, 40.0, grid);
  const std::size_t n = grid.size();
  // x^H T x >= 0 for a spread of deterministic pseudo-random vectors.
  Rng rng(23);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<Cplx> x(n);
    for (auto& c : x) c = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    Cplx quad(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      Cplx row(0.0, 0.0);
      for (std::size_t j = 0; j < n; ++j) row += t[i * n + j] * x[j];
      quad += std::conj(x[i]) * row;
    }
    EXPECT_NEAR(quad.imag(), 0.0, 1e-10);
    EXPECT_GT(quad.real(), -1e-10);
  }
}

TEST(Tcc, TraceMatchesWeightedPupilEnergy) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const std::vector<Cplx> t = tcc_matrix(opt, source, 0.0, grid);
  const std::size_t n = grid.size();
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += t[i * n + i].real();

  const auto kernels =
      socs_kernels(opt, source, 0.0, grid, SocsOptions{64, 1.0});
  EXPECT_NEAR(kernels->trace, trace, 1e-10 * std::max(1.0, trace));
}

TEST(Socs, FullRankKernelsReconstructTcc) {
  // With every kernel retained, sum_k lambda_k phi_k phi_k^H must equal the
  // explicit TCC — this exercises the Jacobi solver, the Gram factorization
  // and the kernel lift in one equation.
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const std::vector<Cplx> t = tcc_matrix(opt, source, 60.0, grid);
  const std::size_t n = grid.size();
  const auto kernels =
      socs_kernels(opt, source, 60.0, grid, SocsOptions{64, 1.0});
  ASSERT_LE(kernels->kernels.size(), source.size());

  std::vector<Cplx> recon(n * n, Cplx(0.0, 0.0));
  for (std::size_t k = 0; k < kernels->kernels.size(); ++k) {
    const std::vector<Cplx>& phi = kernels->kernels[k];
    const double lambda = kernels->weights[k];
    for (std::size_t i = 0; i < n; ++i) {
      const Cplx li = lambda * phi[i];
      for (std::size_t j = 0; j < n; ++j) {
        recon[i * n + j] += li * std::conj(phi[j]);
      }
    }
  }
  const double scale = std::max(1.0, max_abs(t));
  double worst = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    worst = std::max(worst, std::abs(recon[i] - t[i]));
  }
  EXPECT_LT(worst / scale, 1e-10);
}

TEST(Socs, KernelsAreOrthonormalAndOrdered) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const auto kernels =
      socs_kernels(opt, source, 0.0, grid, SocsOptions{12, 0.9995});
  ASSERT_FALSE(kernels->kernels.empty());
  const std::size_t n = grid.size();
  for (std::size_t k = 0; k < kernels->kernels.size(); ++k) {
    if (k > 0) {
      EXPECT_GE(kernels->weights[k - 1], kernels->weights[k]);
    }
    EXPECT_GT(kernels->weights[k], 0.0);
    for (std::size_t m = k; m < kernels->kernels.size(); ++m) {
      Cplx dot(0.0, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        dot += std::conj(kernels->kernels[k][i]) * kernels->kernels[m][i];
      }
      EXPECT_NEAR(std::abs(dot), k == m ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Socs, TruncationHonoursKnobs) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();

  const auto capped = socs_kernels(opt, source, 0.0, grid, SocsOptions{3, 1.0});
  EXPECT_EQ(capped->kernels.size(), 3u);
  EXPECT_LE(capped->captured, capped->trace + 1e-9);

  // Discretized-source TCC spectra have a flat tail (~99.9% needs nearly
  // every kernel), so the energy knob is exercised at a draft-grade budget
  // where truncation genuinely bites.
  const auto by_energy =
      socs_kernels(opt, source, 0.0, grid, SocsOptions{64, 0.90});
  EXPECT_GE(by_energy->captured, 0.90 * by_energy->trace - 1e-9);
  EXPECT_LT(by_energy->kernels.size(), source.size());
}

TEST(Socs, ParityPackedAtNominalGenericOffNominal) {
  // At zero defocus with no aberrations the pupil is exactly real and the
  // ring source is 180-degree symmetric, so every kernel must come out of
  // the parity-blocked build: exactly real, parity-pure, and packable two
  // per transform.  Any pupil phase (defocus here) falls back to the
  // generic complex path.
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();

  const auto nominal = socs_kernels(opt, source, 0.0, grid, SocsOptions{});
  ASSERT_TRUE(nominal->parity_packable());
  const std::size_t n = grid.size();
  for (std::size_t k = 0; k < nominal->kernels.size(); ++k) {
    const std::vector<Cplx>& phi = nominal->kernels[k];
    const double sign = nominal->parity[k] == 1 ? 1.0 : -1.0;
    for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
      for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx) {
        const Cplx v = phi[grid.index(kx, ky)];
        ASSERT_EQ(v.imag(), 0.0);
        // Parity purity within rounding of the lift accumulation.
        EXPECT_NEAR(phi[grid.index(-kx, -ky)].real(), sign * v.real(), 1e-12);
      }
    }
    double norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm2 += std::norm(phi[i]);
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }

  const auto defocused = socs_kernels(opt, source, 40.0, grid, SocsOptions{});
  EXPECT_FALSE(defocused->parity_packable());
}

TEST(Socs, KernelsMemoizedAndDeterministic) {
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const SpectralGrid grid = small_grid();
  const SocsOptions socs{12, 0.9995};
  const auto first = socs_kernels(opt, source, 25.0, grid, socs);
  const auto again = socs_kernels(opt, source, 25.0, grid, socs);
  EXPECT_EQ(first.get(), again.get());  // memo hit shares the value

  // Concurrent lookups (cold or warm) must all observe one coherent value:
  // the builds race but first-insert-wins publishes a single winner.
  std::vector<std::shared_ptr<const SocsKernels>> seen(4);
  {
    std::vector<std::thread> pool;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      pool.emplace_back([&, i] {
        seen[i] = socs_kernels(opt, source, 25.0, grid, socs);
      });
    }
    for (auto& th : pool) th.join();
  }
  for (const auto& k : seen) {
    ASSERT_TRUE(k);
    EXPECT_EQ(k->weights, first->weights);
    for (std::size_t i = 0; i < k->kernels.size(); ++i) {
      EXPECT_EQ(k->kernels[i], first->kernels[i]);
    }
  }
}

// --- SOCS vs Abbe accuracy sweep -----------------------------------------

double measure_cd(const Image2D& latent, double threshold, double x_center,
                  double y = 0.0) {
  const auto w = printed_width(latent, threshold, {x_center, y}, true, 400.0);
  return w.value_or(0.0);
}

std::vector<Rect> line_array(DbUnit width, DbUnit pitch, int count,
                             DbUnit half_len = 500) {
  std::vector<Rect> rects;
  for (int k = -(count / 2); k <= count / 2; ++k) {
    const DbUnit x = k * pitch;
    rects.push_back({x, -half_len, x + width, half_len});
  }
  return rects;
}

struct SweepCase {
  const char* name;
  std::vector<Rect> features;
};

std::vector<SweepCase> sweep_cases() {
  return {
      {"pitch250", line_array(90, 250, 7)},
      {"pitch400", line_array(90, 400, 5)},
      {"pitch800", line_array(90, 800, 3)},
      {"iso", line_array(90, 250, 1)},
  };
}

TEST(SocsVsAbbe, CdWithinTenthNanometreAtNominal) {
  // The acceptance contract: max |CD_SOCS - CD_Abbe| <= 0.1 nm at nominal
  // exposure across dense-through-iso pitches, at the default kernel knobs
  // and the sign-off extraction quality.
  const LithoSimulator abbe;
  LithoSimulator socs;
  socs.set_imaging({ImagingMode::kSocs, SocsOptions{}});
  const Rect window{-900, -700, 990, 700};
  double worst = 0.0;
  for (const SweepCase& c : sweep_cases()) {
    const Image2D ref =
        abbe.latent(c.features, window, {}, LithoQuality::kStandard);
    const Image2D fast =
        socs.latent(c.features, window, {}, LithoQuality::kStandard);
    const double cd_ref = measure_cd(ref, abbe.print_threshold(), 45.0);
    const double cd_fast = measure_cd(fast, socs.print_threshold(), 45.0);
    ASSERT_GT(cd_ref, 0.0) << c.name;
    EXPECT_NEAR(cd_fast, cd_ref, 0.1) << c.name;
    worst = std::max(worst, std::abs(cd_fast - cd_ref));
  }
  // Leave headroom visible in the log when the tolerance tightens.
  RecordProperty("worst_cd_delta_nm", testing::PrintToString(worst));
}

TEST(SocsVsAbbe, CdTracksUnderDefocusAndAberrations) {
  // Off-nominal legs of the sweep: defocus and z7/z9 aberrations change the
  // pupil (and therefore the kernels); SOCS must keep tracking Abbe.  The
  // budget is looser than at nominal — defocused edges have lower slope, so
  // the same intensity truncation error moves the contour further.
  OpticalSettings aberrated;
  aberrated.z9_spherical_waves = 0.035;
  aberrated.z7_coma_x_waves = 0.025;
  const Rect window{-900, -700, 990, 700};
  const ResistModel resist;
  for (const double defocus : {0.0, 80.0}) {
    for (const bool with_aberrations : {false, true}) {
      const OpticalSettings opt =
          with_aberrations ? aberrated : OpticalSettings{};
      const LithoSimulator abbe(opt, resist);
      const LithoSimulator socs(opt, resist,
                                {ImagingMode::kSocs, SocsOptions{}});
      for (const SweepCase& c : sweep_cases()) {
        const Exposure exposure{defocus, 1.0};
        const Image2D ref =
            abbe.latent(c.features, window, exposure, LithoQuality::kStandard);
        const Image2D fast =
            socs.latent(c.features, window, exposure, LithoQuality::kStandard);
        const double cd_ref = measure_cd(ref, abbe.print_threshold(), 45.0);
        const double cd_fast = measure_cd(fast, socs.print_threshold(), 45.0);
        if (cd_ref <= 0.0) {
          // The reference says this condition fails to print (heavy defocus
          // plus aberrations can kill the feature); SOCS must agree rather
          // than invent a contour.
          EXPECT_LE(cd_fast, 0.0)
              << c.name << " defocus=" << defocus
              << " ab=" << with_aberrations;
          continue;
        }
        EXPECT_NEAR(cd_fast, cd_ref, 0.25)
            << c.name << " defocus=" << defocus << " ab=" << with_aberrations;
      }
    }
  }
}

TEST(SocsVsAbbe, AerialIntensityErrorBounded) {
  // Field-level check (stronger than CD at one probe): the SOCS aerial
  // image stays close to Abbe everywhere on the grid, at every quality.
  const Rect window{-900, -700, 990, 700};
  const std::vector<Rect> lines = line_array(90, 250, 7);
  const LithoSimulator abbe;
  LithoSimulator socs;
  socs.set_imaging({ImagingMode::kSocs, SocsOptions{}});
  for (const LithoQuality q :
       {LithoQuality::kDraft, LithoQuality::kStandard, LithoQuality::kFine}) {
    const Image2D ref = abbe.aerial(lines, window, 0.0, q);
    const Image2D fast = socs.aerial(lines, window, 0.0, q);
    ASSERT_EQ(ref.data().size(), fast.data().size());
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.data().size(); ++i) {
      worst = std::max(worst, std::abs(ref.data()[i] - fast.data()[i]));
    }
    EXPECT_LT(worst, 2e-3) << static_cast<int>(q);
  }
}

TEST(SocsVsAbbe, ExactWhenEveryKernelKept) {
  // With energy_fraction = 1 and no kernel cap the truncation vanishes, so
  // SOCS differs from Abbe only by transform rounding — the images must
  // agree to near machine precision.  This isolates "decomposition is
  // exact" from "truncation is small".
  const Rect window{-900, -700, 990, 700};
  const std::vector<Rect> lines = line_array(90, 250, 5);
  const LithoSimulator abbe;
  LithoSimulator socs;
  socs.set_imaging({ImagingMode::kSocs, SocsOptions{1024, 1.0}});
  const Image2D ref = abbe.aerial(lines, window, 0.0, LithoQuality::kStandard);
  const Image2D fast =
      socs.aerial(lines, window, 0.0, LithoQuality::kStandard);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.data().size(); ++i) {
    worst = std::max(worst, std::abs(ref.data()[i] - fast.data()[i]));
  }
  EXPECT_LT(worst, 1e-9);
}

TEST(SocsVsAbbe, SocsImagesAreBitIdenticalAcrossCalls) {
  // The determinism contract extends to the fast path: repeated synthesis
  // (warm or cold kernel cache) returns bit-identical images.
  const Rect window{-900, -700, 990, 700};
  const std::vector<Rect> lines = line_array(90, 250, 5);
  LithoSimulator socs;
  socs.set_imaging({ImagingMode::kSocs, SocsOptions{}});
  const Image2D a = socs.latent(lines, window, {}, LithoQuality::kStandard);
  const Image2D b = socs.latent(lines, window, {}, LithoQuality::kStandard);
  ASSERT_EQ(a.data().size(), b.data().size());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace poc
