#!/usr/bin/env bash
# Shard smoke gate: proves the sharded multi-process contract end to end,
# outside the unit tests, with real fork/exec workers and a real SIGKILL.
#
#   1. reference: a 1-worker coordinator run records the ground-truth
#      annotated worst slack (string-identical at %.9f from here on);
#   2. scale: a 2-worker run over the same design must print a
#      bit-identical worst slack, and its workers' stats files should show
#      cross-worker disk-cache hits (worker 1 consuming windows worker 0
#      published);
#   3. kill: a 2-worker run where worker 1 SIGKILLs itself mid-shard (the
#      journal kill hook riding the worker argv).  The coordinator must
#      contain the death — salvage the private journal, recompute the
#      residual windows in-process, report phase-"shard" faults — and
#      still print the identical worst slack with exit 0;
#   4. resume: rerunning the coordinator over the kill leg's work dir must
#      replay (shared disk cache + surviving journals) to the same slack.
#
# Usage: scripts/shard_smoke.sh [build-dir] [design]
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
DESIGN="${2:-tiled30}"
BIN="$BUILD/examples/shard_worker"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "shard_smoke: $BIN not built" >&2
  exit 1
fi

ws_of()    { grep -o 'ws=[0-9.-]*'        <<<"$1" | head -1 | cut -d= -f2; }
field_of() { grep -o "$2=[0-9][0-9]*" <<<"$1" | head -1 | cut -d= -f2; }

echo "== shard_smoke: leg 1 — reference, 1 worker =="
OUT=$("$BIN" --design "$DESIGN" --workers 1 --threads 1 --fresh \
      --work-dir "$WORK/w1" 2>&1) || {
  echo "$OUT"; echo "shard_smoke: 1-worker run failed" >&2; exit 1
}
echo "$OUT" | grep SHARD_RESULT
REF_WS=$(ws_of "$OUT")
[[ -n "$REF_WS" ]] || { echo "shard_smoke: no SHARD_RESULT line" >&2; exit 1; }

echo "== shard_smoke: leg 2 — 2 workers, shared disk cache =="
OUT=$("$BIN" --design "$DESIGN" --workers 2 --threads 1 --fresh \
      --work-dir "$WORK/w2" 2>&1) || {
  echo "$OUT"; echo "shard_smoke: 2-worker run failed" >&2; exit 1
}
echo "$OUT" | grep SHARD_RESULT
WS=$(ws_of "$OUT")
if [[ "$WS" != "$REF_WS" ]]; then
  echo "shard_smoke: 2-worker WS diverged: $WS != $REF_WS" >&2
  exit 1
fi
CROSS_HITS=$(awk '$1 == "disk_hits" { n += $2 } END { print n + 0 }' \
             "$WORK"/w2/run.w*.stats)
echo "cross-worker disk-cache hits: $CROSS_HITS"
if [[ "$CROSS_HITS" -eq 0 ]]; then
  # Scheduling-dependent (one worker may finish before the other starts a
  # shared window), so a warning rather than a failure.
  echo "WARNING: no cross-worker disk hits observed" >&2
fi

echo "== shard_smoke: leg 3 — SIGKILL worker 1 after 10 journaled windows =="
OUT=$("$BIN" --design "$DESIGN" --workers 2 --threads 1 --fresh \
      --work-dir "$WORK/kill" --kill-worker 1 --kill-after 10 2>&1) || {
  echo "$OUT"; echo "shard_smoke: kill-leg coordinator failed" >&2; exit 1
}
echo "$OUT" | grep -E 'SHARD_RESULT|shard fault|worker 0[01]:'
WS=$(ws_of "$OUT")
FAULTS=$(field_of "$OUT" shard_faults)
RESIDUAL=$(field_of "$OUT" residual)
if [[ "$WS" != "$REF_WS" ]]; then
  echo "shard_smoke: killed-worker WS diverged: $WS != $REF_WS" >&2
  exit 1
fi
if [[ "${FAULTS:-0}" -eq 0 ]]; then
  echo "shard_smoke: worker death must surface as phase-\"shard\" faults" >&2
  exit 1
fi
if [[ "${RESIDUAL:-0}" -eq 0 ]]; then
  echo "shard_smoke: killed worker's windows must recompute as residuals" >&2
  exit 1
fi

echo "== shard_smoke: leg 4 — resume over the kill leg's work dir =="
OUT=$("$BIN" --design "$DESIGN" --workers 2 --threads 1 \
      --work-dir "$WORK/kill" 2>&1) || {
  echo "$OUT"; echo "shard_smoke: resume run failed" >&2; exit 1
}
echo "$OUT" | grep SHARD_RESULT
WS=$(ws_of "$OUT")
if [[ "$WS" != "$REF_WS" ]]; then
  echo "shard_smoke: resumed WS diverged: $WS != $REF_WS" >&2
  exit 1
fi

echo "== shard_smoke: worst slack bit-identical across 1w / 2w / kill / resume =="
