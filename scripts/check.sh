#!/usr/bin/env bash
# Full local gate: the tier-1 build + test pass, a ThreadSanitizer build
# that runs the parallel-engine tests (par_test), the fault-containment
# suite (fault_test — injected faults + retries under 4 threads) and the
# flow-level tests that exercise it (cache_test, core_test — now including
# the SOCS-mode flows), and an AddressSanitizer build over the
# litho/SOCS/cache/core/fault tests.  The TSan step is what keeps the
# determinism contract honest —
# slot writes and the work-stealing queues must be race-free, not just
# produce the right answer on one scheduling.  The ASan step covers the
# imaging scratch-buffer reuse and the kernel/pupil cache lifetimes.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== step 1/4: regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== step 2/4: full test suite =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== step 3/4: TSan build + race tests (par_test, fault_test, cache_test, socs_test, core_test) =="
cmake -B build-tsan -S . -DPOC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target par_test fault_test cache_test socs_test core_test
./build-tsan/tests/par_test
./build-tsan/tests/fault_test
./build-tsan/tests/cache_test
./build-tsan/tests/socs_test
./build-tsan/tests/core_test

echo "== step 4/4: ASan build + memory tests (litho_test, fault_test, socs_test, cache_test, core_test) =="
cmake -B build-asan -S . -DPOC_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target litho_test fault_test socs_test cache_test core_test
./build-asan/tests/litho_test
./build-asan/tests/fault_test
./build-asan/tests/socs_test
./build-asan/tests/cache_test
./build-asan/tests/core_test

echo "== check.sh: all green =="
