#!/usr/bin/env bash
# Full local gate: the tier-1 build + test pass, followed by a
# ThreadSanitizer build that runs the parallel-engine tests (par_test)
# and the flow-level tests that exercise it (core_test).  The TSan step
# is what keeps the determinism contract honest — slot writes and the
# work-stealing queues must be race-free, not just produce the right
# answer on one scheduling.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== step 1/3: regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== step 2/3: full test suite =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== step 3/3: TSan build + race tests (par_test, cache_test, core_test) =="
cmake -B build-tsan -S . -DPOC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target par_test cache_test core_test
./build-tsan/tests/par_test
./build-tsan/tests/cache_test
./build-tsan/tests/core_test

echo "== check.sh: all green =="
