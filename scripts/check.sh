#!/usr/bin/env bash
# Full local gate: the tier-1 build + test pass, a ThreadSanitizer build
# that runs the parallel-engine tests (par_test), the fault-containment
# suite (fault_test — injected faults + retries under 4 threads), the
# durable-run suite (run_test — journal replay, cancellation, kill-resume)
# and the flow-level tests that exercise it (cache_test, core_test — now
# including the SOCS-mode flows), an AddressSanitizer build over the
# litho/SOCS/cache/core/fault tests, and the crash-recovery gate
# (scripts/crash_recovery.sh — SIGKILL a journaled run mid-flow, resume at
# 1 and 4 threads, assert the annotated worst slack is bit-identical).  The TSan step is what keeps the
# determinism contract honest —
# slot writes and the work-stealing queues must be race-free, not just
# produce the right answer on one scheduling.  The ASan step covers the
# imaging scratch-buffer reuse and the kernel/pupil cache lifetimes.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== step 1/5: regular build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== step 2/5: full test suite =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== step 3/5: TSan build + race tests (par_test, fault_test, run_test, cache_test, socs_test, core_test, sta_incremental_test, determinism_test[batched]) =="
cmake -B build-tsan -S . -DPOC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target par_test fault_test run_test cache_test socs_test core_test sta_incremental_test determinism_test
./build-tsan/tests/par_test
./build-tsan/tests/fault_test
# Death tests fork; TSan dislikes forking multithreaded processes, and the
# SIGKILL kill-resume path is already covered by step 2 and step 5.
./build-tsan/tests/run_test --gtest_filter='-*Killed*'
./build-tsan/tests/cache_test
./build-tsan/tests/socs_test
./build-tsan/tests/core_test
# Batched-vs-scalar determinism at 1 and 4 threads: the chunk-staging
# slots (per-worker ownership, no locks) must be race-free, and every
# batch width must reproduce the scalar flow bit for bit.
./build-tsan/tests/determinism_test --gtest_filter='DeterminismBatch*'
# The incremental-STA equivalence fuzz harness: its 4-thread legs drive the
# TimingGraph per-level parallel evaluation, so TSan checks the disjoint-
# slot write contract while the asserts check bit-identity.
./build-tsan/tests/sta_incremental_test

echo "== step 4/5: ASan build + memory tests (litho_test, fault_test, socs_test, cache_test, core_test, batch_test) =="
cmake -B build-asan -S . -DPOC_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target litho_test fault_test socs_test cache_test core_test batch_test
./build-asan/tests/litho_test
./build-asan/tests/fault_test
./build-asan/tests/socs_test
./build-asan/tests/cache_test
./build-asan/tests/core_test
# The SoA engine's arena reuse + the warm-loop zero-allocation probe (the
# probe's operator-new override forwards to malloc, which ASan intercepts).
./build-asan/tests/batch_test

echo "== step 5/5: crash-recovery gate (SIGKILL + resume, bit-identical WS) =="
cmake --build build -j "$JOBS" --target resumable_flow
scripts/crash_recovery.sh build

echo "== check.sh: all green =="
