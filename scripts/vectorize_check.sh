#!/usr/bin/env bash
# Vectorization gate for the SoA kernel loops.  The batched engine's
# speedup rests on three inner loops staying autovectorized; each is
# marked in-source with a `VEC-LOOP(<name>)` comment directly above the
# loop:
#
#   fft-soa-butterfly   src/common/fft.cpp     lane-batched butterfly
#   socs-kernel-apply   src/litho/imaging.cpp  per-lane kernel accumulate
#   blur-scatter        src/litho/imaging.cpp  separable-blur scatter
#
# This script recompiles the two kernel TUs with the same flags the build
# uses (POC_KERNEL_OPTS in the top-level CMakeLists.txt) plus
# -fopt-info-vec-optimized, and fails unless the compiler reports a
# vectorized loop within a few lines below every marker.  A silent
# regression — a new alias, a reordered field, an accidental
# loop-carried dependence — turns the 2x batched win back into scalar
# code without failing any test; this check is what catches it.
#
# Usage: scripts/vectorize_check.sh [c++-compiler]
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-g++}}"

KERNEL_FLAGS=(-std=c++20 -O3 -ffp-contract=off -I.)
if "$CXX" -mavx2 -E -x c++ /dev/null >/dev/null 2>&1; then
  KERNEL_FLAGS+=(-mavx2)
fi

# How far below a VEC-LOOP marker the compiler's "loop vectorized" report
# may land (the marker sits directly above the loop statement).
WINDOW=8

STATUS=0
check_tu() {
  local tu="$1"; shift
  local report
  report=$(mktemp)
  if ! "$CXX" "${KERNEL_FLAGS[@]}" -fopt-info-vec-optimized="$report" \
       -c "$tu" -o /dev/null; then
    echo "FAIL: $tu does not compile with the kernel flags" >&2
    rm -f "$report"
    STATUS=1
    return
  fi
  local marker
  for marker in "$@"; do
    local line
    line=$(grep -n "VEC-LOOP($marker)" "$tu" | head -1 | cut -d: -f1)
    if [ -z "$line" ]; then
      echo "FAIL: marker VEC-LOOP($marker) missing from $tu" >&2
      STATUS=1
      continue
    fi
    local hit=""
    local l
    for ((l = line; l <= line + WINDOW; ++l)); do
      if grep -Eq "$tu:$l:[0-9]+: optimized: loop vectorized" "$report"; then
        hit="$l"
        break
      fi
    done
    if [ -n "$hit" ]; then
      echo "OK: $marker ($tu:$hit vectorized)"
    else
      echo "FAIL: VEC-LOOP($marker) at $tu:$line was NOT vectorized" >&2
      STATUS=1
    fi
  done
  rm -f "$report"
}

check_tu src/common/fft.cpp fft-soa-butterfly
check_tu src/litho/imaging.cpp socs-kernel-apply blur-scatter

if [ "$STATUS" -ne 0 ]; then
  echo "vectorize_check: FAILED" >&2
  exit 1
fi
echo "vectorize_check: all marked loops vectorized"
