#!/usr/bin/env bash
# PR2 performance proof: runs the kernel micro-benchmarks plus the T2
# cache-on/off comparison and assembles BENCH_PR2.json (benchmark name,
# real time, cache hit rate).  The cache rows come from the greppable
# CACHE_BENCH lines bench_t2_timing_comparison prints for its
# repeated-instance design; the speedup entry is cache-off wall time over
# cache-on wall time for the same run_opc+extract work.
#
# Usage: scripts/bench.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
OUT=BENCH_PR2.json

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_perf_kernels \
    bench_t2_timing_comparison >/dev/null

echo "== kernels (google-benchmark) =="
KERNELS_JSON=$(mktemp)
./build/bench/bench_perf_kernels --benchmark_format=json \
    --benchmark_out_format=json >"$KERNELS_JSON"

echo "== T2 cache on/off =="
T2_LOG=$(mktemp)
# POC_CACHE stays unset: the bench runs its cache section with the cache
# explicitly off then on over the same design (POC_CACHE=0 would force
# every flow off and void the comparison).
./build/bench/bench_t2_timing_comparison | tee "$T2_LOG"

# CACHE_BENCH name=<n> cache=<on|off> wall_ms=<ms> hit_rate=<0..1>
awk '
  /^CACHE_BENCH / {
    for (i = 2; i <= NF; ++i) {
      split($i, kv, "=")
      v[kv[1]] = kv[2]
    }
    row = sprintf("    {\"name\": \"%s_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"ms\", \"hit_rate\": %s}",
                  v["name"], v["cache"], v["wall_ms"], v["hit_rate"])
    rows = rows (rows == "" ? "" : ",\n") row
    ms[v["cache"]] = v["wall_ms"]
  }
  END {
    printf "{\n  \"cache_bench\": [\n%s\n  ],\n", rows
    if (ms["off"] > 0 && ms["on"] > 0)
      printf "  \"cache_speedup\": %.3f,\n", ms["off"] / ms["on"]
  }
' "$T2_LOG" >"$OUT"

# Append the kernel timings, reduced to name/real_time/time_unit triples.
awk '
  /"name":/      { name = $0; sub(/^.*"name": "/, "", name); sub(/".*$/, "", name) }
  /"real_time":/ { rt = $0; sub(/^.*"real_time": /, "", rt); sub(/,.*$/, "", rt) }
  /"time_unit":/ {
    unit = $0; sub(/^.*"time_unit": "/, "", unit); sub(/".*$/, "", unit)
    if (name != "") {
      row = sprintf("    {\"name\": \"%s\", \"real_time\": %s, \"time_unit\": \"%s\"}",
                    name, rt, unit)
      rows = rows (rows == "" ? "" : ",\n") row
      name = ""
    }
  }
  END { printf "  \"kernels\": [\n%s\n  ]\n}\n", rows }
' "$KERNELS_JSON" >>"$OUT"

rm -f "$KERNELS_JSON" "$T2_LOG"
echo "wrote $OUT"
