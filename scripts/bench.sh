#!/usr/bin/env bash
# Performance proof: runs the kernel micro-benchmarks (including the SOCS
# fast-imaging path and its kernel-budget sweep) plus the T2 bench's
# cache, SOCS and fault-containment sections, and assembles
# BENCH_PR4.json:
#   - kernels:        every google-benchmark row (name, real_time, unit,
#                     label — the SOCS kernel sweep stores cd_delta_nm in
#                     the label)
#   - socs_per_window_speedup: BM_AerialImage/q over BM_AerialImageSocs/q
#                     per quality (the >= 2x acceptance number at q = 3)
#   - cache_bench / cache_speedup: PR2 carry-forward rows from the
#                     greppable CACHE_BENCH lines
#   - socs_e2e:       SOCS_BENCH rows (abbe / socs_draft / socs_full wall
#                     time + annotated WS) with computed speedups
#   - socs_t2:        the T2 headline (WS change %, spearman, top-10
#                     displacement) reproduced under full SOCS
#   - fault_bench / fault_overhead_pct / fault_ws_identical: FAULT_BENCH
#                     rows (containment on/off over the same design) — the
#                     PR4 acceptance number is a noise-level overhead with
#                     bit-identical annotated WS
#   - journal_bench / journal_overhead_pct / journal_ws_identical /
#                     journal_resume_speedup: JOURNAL_BENCH rows (write-
#                     ahead journal off/on/resume over the same design) —
#                     the PR5 acceptance number is < 2 % fault-free
#                     overhead with a bit-identical annotated WS, and the
#                     resume row shows full-replay wall time
#   - incr_bench / incr_speedup: INCR_BENCH rows (full stateless re-time vs
#                     incremental worklist update after 1/8/64-gate
#                     perturbations, identical worst slack asserted by the
#                     bench itself) — the PR6 acceptance number is >= 5x
#                     for <= 8-gate perturbations on inv_chain64
#   - batch_bench / batch_e2e_speedup / batched_ws_identical: BATCH_BENCH
#                     rows (scalar vs batched SoA hot loops over the same
#                     full-SOCS flow) — the annotated WS must be exactly
#                     equal (batch width is a pure performance knob)
#   - batch_per_window_speedup / batch_speedup_in_binary: BM_AerialImageSocsFine
#                     over BM_AerialImageSocsBatched/N per-window time,
#                     both measured in the current binary (where the scalar
#                     lane ALSO has the PR7 loop rewrites + kernel flags)
#   - scalar_lane_uplift: BM_AerialImageSocs/3 from the committed
#                     BENCH_PR6.json over the same row now — what the PR7
#                     scalar-lane rewrite alone bought on the identical
#                     fixture
#   - batch_speedup:  the PR7 acceptance headline, >= 2x per-window at
#                     fine quality vs the PR6 scalar SOCS path =
#                     batch_speedup_in_binary * scalar_lane_uplift.  This
#                     derivation is conservative: a direct probe (PR6
#                     commit rebuilt in a scratch worktree, same fine
#                     fixture, same host) measured 14.1 ms/window vs the
#                     batched 5.2 ms/window = 2.7x, while the q=3
#                     standard-window uplift used here underestimates the
#                     fine-fixture uplift (1.36x vs 1.72x measured)
#   - fault_overhead_ok: fault_overhead_pct <= 2.0 — the acceptance band
#                     that closes the BENCH_PR5 11.8 % watch item.  A local
#                     run only warns (single-vCPU hosts are noisy); the CI
#                     bench-smoke job hard-fails on a false flag.
#
# Shard mode (scripts/bench.sh --shards N [--workers N] [--design tiledN]):
# benches the PR8 sharded multi-process runs over the repeated-block tiled
# design and writes BENCH_PR8.json instead:
#   - shard_bench:    one row per leg (1, 2, N workers cold + N workers
#                     against the warm shared disk cache), each with
#                     end-to-end wall time, annotated WS, windows/sec and
#                     peak RSS, plus per_worker columns straight from the
#                     workers' getrusage stats files (windows/sec,
#                     maxrss_kb, mem/disk hit counters)
#   - shard_speedup:  cold 1-worker wall over cold N-worker wall — the
#                     multi-process scaling headline (> 1.5x at 4 workers
#                     on a >= 4-vCPU host; single-vCPU hosts cannot scale
#                     by construction, so locally this only warns and the
#                     CI shard-smoke job is the enforcement point)
#   - warm_cache_speedup: cold 1-worker wall over an N-worker rerun that
#                     finds every window already published in the shared
#                     spill-to-disk cache — the cross-process reuse the
#                     DiskCacheStore exists for, measurable on any host
#   - cross_worker_hit_rate: disk_hits / (disk_hits + insertions) summed
#                     over the cold N-worker leg's stats files — nonzero
#                     means worker 3 really hit windows worker 0 imaged
#   - shard_ws_identical: the annotated WS string compared across every
#                     leg (cold 1/2/N, warm) — must be bit-identical
#
# Self-heal mode (scripts/bench.sh --selfheal [--workers N] [--design
# tiledN]): measures what the PR10 supervision machinery costs a healthy
# run and writes BENCH_PR10.json:
#   - selfheal_bench: three interleaved (baseline, watchdog) run pairs of
#                     the same sharded flow — baseline with heartbeats and
#                     watchdog off (PR 8 semantics), watchdog with
#                     per-append heartbeats + the supervision loop armed
#   - selfheal_overhead_pct: best-of-3 watchdog wall over best-of-3
#                     baseline wall, minus one — the heartbeat+watchdog
#                     overhead.  Min, not median: the workload is
#                     deterministic, so the fastest run of each leg is the
#                     least noise-contaminated estimate.
#                     The injectable-VFS shim rides in BOTH legs (its
#                     fault-free path is one relaxed atomic load; the
#                     fault harness measured that class of probe at noise
#                     level in BENCH_PR4), so the delta isolates the
#                     supervision channel itself
#   - selfheal_ws_identical: annotated WS string-identical across every
#                     run of both legs — always a hard failure if false
#   - selfheal_overhead_ok: selfheal_overhead_pct <= 2.0.  A local run
#                     only warns (single-vCPU hosts are noisy); the CI
#                     chaos-smoke job hard-fails on a false flag
#
# Usage: scripts/bench.sh [jobs]
#        scripts/bench.sh --shards N [--workers N] [--design tiledN] [jobs]
#        scripts/bench.sh --selfheal [--workers N] [--design tiledN] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--shards" ]; then
  shift
  MAX_WORKERS="${1:-4}"
  shift || true
  DESIGN=tiled60
  JOBS="$(nproc)"
  while [ $# -gt 0 ]; do
    case "$1" in
      --workers) MAX_WORKERS="$2"; shift 2 ;;
      --design)  DESIGN="$2";      shift 2 ;;
      [0-9]*)    JOBS="$1";        shift   ;;
      *) echo "unknown shard-bench argument: $1" >&2; exit 2 ;;
    esac
  done
  OUT=BENCH_PR8.json

  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target shard_worker >/dev/null
  BIN=./build/examples/shard_worker
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT

  LEG_NAMES=()
  LEG_WORKERS=()
  LEG_WALL_MS=()
  LEG_WS=()
  LEG_DIRS=()

  run_leg() {  # <name> <workers> <dir> [extra shard_worker args...]
    local name="$1" w="$2" dir="$3"
    shift 3
    echo "== shard leg: $name =="
    local t0 t1 line
    t0=$(date +%s%N)
    line=$("$BIN" --design "$DESIGN" --workers "$w" --threads 1 \
             --work-dir "$dir" "$@" | grep '^SHARD_RESULT')
    t1=$(date +%s%N)
    echo "$line"
    LEG_NAMES+=("$name")
    LEG_WORKERS+=("$w")
    LEG_WALL_MS+=("$(( (t1 - t0) / 1000000 ))")
    LEG_WS+=("$(echo "$line" | sed -n 's/.*ws=\([-0-9.]*\).*/\1/p')")
    LEG_DIRS+=("$dir")
  }

  run_leg "${DESIGN}_workers1_cold" 1 "$WORK/w1" --fresh
  run_leg "${DESIGN}_workers2_cold" 2 "$WORK/w2" --fresh
  run_leg "${DESIGN}_workers${MAX_WORKERS}_cold" "$MAX_WORKERS" "$WORK/wN" --fresh
  # Warm leg: a fresh run directory whose shared disk cache is already
  # populated (the cold N-worker leg's publishes) — every window is a
  # cross-process disk hit instead of a recompute.
  mkdir -p "$WORK/warm"
  cp -r "$WORK/wN/cache" "$WORK/warm/cache"
  run_leg "${DESIGN}_workers${MAX_WORKERS}_warm" "$MAX_WORKERS" "$WORK/warm"

  # Per-worker stats files ("key value" lines, getrusage-sourced) -> JSON
  # rows + leg aggregates (total windows, peak RSS, disk hits/insertions).
  leg_rows=""
  declare -A LEG_DISK_HITS LEG_INSERTIONS
  for i in "${!LEG_NAMES[@]}"; do
    # awk once per leg directory, emitting "per_worker" rows and aggregates.
    read -r windows peak dh ins rows < <(awk '
      BEGIN { RS = ""; FS = "\n" }
      {
        delete kv
        for (i = 1; i <= NF; ++i) { split($i, a, " "); kv[a[1]] = a[2] }
        wps = kv["wall_ms"] > 0 ? kv["windows"] / (kv["wall_ms"] / 1000.0) : 0
        row = sprintf("{\"worker\": %d, \"windows\": %d, \"wall_ms\": %.1f, " \
                      "\"windows_per_sec\": %.2f, \"maxrss_kb\": %d, " \
                      "\"mem_hits\": %d, \"disk_hits\": %d, \"misses\": %d, " \
                      "\"insertions\": %d}",
                      kv["worker"], kv["windows"], kv["wall_ms"], wps,
                      kv["maxrss_kb"], kv["mem_hits"], kv["disk_hits"],
                      kv["misses"], kv["insertions"])
        rows = rows (rows == "" ? "" : ", ") row
        windows += kv["windows"]
        if (kv["maxrss_kb"] > peak) peak = kv["maxrss_kb"]
        dh += kv["disk_hits"]; ins += kv["insertions"]
      }
      END { printf "%d %d %d %d %s\n", windows, peak, dh, ins, rows }
    ' "${LEG_DIRS[$i]}"/run.w*.stats)
    LEG_DISK_HITS[$i]="$dh"
    LEG_INSERTIONS[$i]="$ins"
    wall="${LEG_WALL_MS[$i]}"
    wps=$(awk "BEGIN { printf \"%.2f\", ($wall > 0) ? $windows / ($wall / 1000.0) : 0 }")
    row=$(printf '    {"name": "%s", "workers": %s, "real_time": %s, "time_unit": "ms", "annot_ws_ps": %s, "windows": %s, "windows_per_sec": %s, "peak_rss_kb": %s, "disk_hits": %s, "insertions": %s,\n     "per_worker": [%s]}' \
      "${LEG_NAMES[$i]}" "${LEG_WORKERS[$i]}" "$wall" "${LEG_WS[$i]}" \
      "$windows" "$wps" "$peak" "$dh" "$ins" "$rows")
    leg_rows="$leg_rows${leg_rows:+,$'\n'}$row"
  done

  # Headline aggregates.  Index 0/1/2 = cold 1/2/N workers, 3 = warm N.
  SPEEDUP_2W=$(awk "BEGIN { printf \"%.3f\", ${LEG_WALL_MS[0]} / ${LEG_WALL_MS[1]} }")
  SPEEDUP_NW=$(awk "BEGIN { printf \"%.3f\", ${LEG_WALL_MS[0]} / ${LEG_WALL_MS[2]} }")
  WARM_SPEEDUP=$(awk "BEGIN { printf \"%.3f\", ${LEG_WALL_MS[0]} / ${LEG_WALL_MS[3]} }")
  HIT_RATE=$(awk "BEGIN { d = ${LEG_DISK_HITS[2]}; i = ${LEG_INSERTIONS[2]}; printf \"%.4f\", ((d + i) > 0 ? d / (d + i) : 0) }")
  WS_IDENTICAL=true
  for ws in "${LEG_WS[@]}"; do
    [ "$ws" = "${LEG_WS[0]}" ] || WS_IDENTICAL=false
  done
  CPUS=$(nproc)
  SPEEDUP_OK=$(awk "BEGIN { print (${SPEEDUP_NW} > 1.5) ? \"true\" : \"false\" }")

  {
    printf '{\n'
    printf '  "design": "%s",\n' "$DESIGN"
    printf '  "host_cpus": %s,\n' "$CPUS"
    printf '  "shard_bench": [\n%s\n  ],\n' "$leg_rows"
    printf '  "shard_speedup_2w": %s,\n' "$SPEEDUP_2W"
    printf '  "shard_speedup": %s,\n' "$SPEEDUP_NW"
    printf '  "shard_speedup_ok": %s,\n' "$SPEEDUP_OK"
    printf '  "warm_cache_speedup": %s,\n' "$WARM_SPEEDUP"
    printf '  "cross_worker_hit_rate": %s,\n' "$HIT_RATE"
    printf '  "shard_ws_identical": %s\n' "$WS_IDENTICAL"
    printf '}\n'
  } >"$OUT"

  if [ "$WS_IDENTICAL" != "true" ]; then
    echo "ERROR: annotated worst slack differs across shard legs" >&2
    exit 1
  fi
  if [ "$SPEEDUP_OK" != "true" ]; then
    if [ "$CPUS" -ge 4 ]; then
      echo "ERROR: shard_speedup=$SPEEDUP_NW <= 1.5 on a ${CPUS}-vCPU host" >&2
      exit 1
    fi
    echo "WARNING: shard_speedup=$SPEEDUP_NW (host has only $CPUS vCPU(s);" \
         "multi-process scaling needs >= 4 — CI shard-smoke enforces the bar)" >&2
  fi
  echo "wrote $OUT"
  exit 0
fi

if [ "${1:-}" = "--selfheal" ]; then
  shift
  WORKERS=2
  DESIGN=tiled60
  JOBS="$(nproc)"
  while [ $# -gt 0 ]; do
    case "$1" in
      --workers) WORKERS="$2"; shift 2 ;;
      --design)  DESIGN="$2";  shift 2 ;;
      [0-9]*)    JOBS="$1";    shift   ;;
      *) echo "unknown selfheal-bench argument: $1" >&2; exit 2 ;;
    esac
  done
  OUT=BENCH_PR10.json

  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target shard_worker >/dev/null
  BIN=./build/examples/shard_worker
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT

  # run_leg <dir> [extra args...] — sets RUN_MS and RUN_WS.
  run_leg() {
    local dir="$1"
    shift
    local t0 t1 line
    t0=$(date +%s%N)
    line=$("$BIN" --design "$DESIGN" --workers "$WORKERS" --threads 1 \
             --fresh --work-dir "$dir" "$@" | grep '^SHARD_RESULT')
    t1=$(date +%s%N)
    RUN_MS=$(( (t1 - t0) / 1000000 ))
    RUN_WS=$(echo "$line" | sed -n 's/.*ws=\([-0-9.]*\).*/\1/p')
  }

  min3() { printf '%s\n' "$@" | sort -n | sed -n 1p; }

  # Interleaved pairs so slow drift (thermal, CI neighbors) hits both legs
  # alike.  Baseline = PR 8 semantics: no heartbeats, no watchdog.
  BASE_MS=()
  WATCH_MS=()
  ALL_WS=()
  rows=""
  for i in 1 2 3; do
    echo "== selfheal pair $i/3: baseline (no heartbeats, no watchdog) =="
    run_leg "$WORK/base$i" --heartbeat-every 0
    BASE_MS+=("$RUN_MS"); ALL_WS+=("$RUN_WS")
    rows="$rows${rows:+,$'\n'}$(printf '    {"name": "%s_baseline_run%d", "workers": %d, "real_time": %d, "time_unit": "ms", "annot_ws_ps": %s}' \
      "$DESIGN" "$i" "$WORKERS" "$RUN_MS" "$RUN_WS")"

    echo "== selfheal pair $i/3: watchdog (heartbeats + supervision) =="
    run_leg "$WORK/watch$i" --heartbeat-every 1 \
      --watchdog-timeout-ms 60000 --watchdog-poll-ms 250
    WATCH_MS+=("$RUN_MS"); ALL_WS+=("$RUN_WS")
    rows="$rows${rows:+,$'\n'}$(printf '    {"name": "%s_watchdog_run%d", "workers": %d, "real_time": %d, "time_unit": "ms", "annot_ws_ps": %s}' \
      "$DESIGN" "$i" "$WORKERS" "$RUN_MS" "$RUN_WS")"
  done

  BASE_MED=$(min3 "${BASE_MS[@]}")
  WATCH_MED=$(min3 "${WATCH_MS[@]}")
  OVERHEAD=$(awk "BEGIN { printf \"%.2f\", ($BASE_MED > 0) ? ($WATCH_MED / $BASE_MED - 1) * 100 : 0 }")
  OVERHEAD_OK=$(awk "BEGIN { print ($OVERHEAD <= 2.0) ? \"true\" : \"false\" }")
  WS_IDENTICAL=true
  for ws in "${ALL_WS[@]}"; do
    [ "$ws" = "${ALL_WS[0]}" ] || WS_IDENTICAL=false
  done

  {
    printf '{\n'
    printf '  "design": "%s",\n' "$DESIGN"
    printf '  "workers": %s,\n' "$WORKERS"
    printf '  "host_cpus": %s,\n' "$(nproc)"
    printf '  "selfheal_bench": [\n%s\n  ],\n' "$rows"
    printf '  "baseline_best_ms": %s,\n' "$BASE_MED"
    printf '  "watchdog_best_ms": %s,\n' "$WATCH_MED"
    printf '  "selfheal_overhead_pct": %s,\n' "$OVERHEAD"
    printf '  "selfheal_overhead_ok": %s,\n' "$OVERHEAD_OK"
    printf '  "selfheal_ws_identical": %s\n' "$WS_IDENTICAL"
    printf '}\n'
  } >"$OUT"

  if [ "$WS_IDENTICAL" != "true" ]; then
    echo "ERROR: annotated worst slack differs between watchdog on/off" >&2
    exit 1
  fi
  if [ "$OVERHEAD_OK" != "true" ]; then
    echo "WARNING: selfheal_overhead_pct=$OVERHEAD > 2.0 (noisy on small" \
         "hosts; CI chaos-smoke hard-fails on the JSON flag)" >&2
  fi
  echo "wrote $OUT"
  exit 0
fi

JOBS="${1:-$(nproc)}"
OUT=BENCH_PR7.json

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_perf_kernels \
    bench_t2_timing_comparison >/dev/null

echo "== kernels (google-benchmark) =="
KERNELS_JSON=$(mktemp)
./build/bench/bench_perf_kernels --benchmark_format=json \
    --benchmark_out_format=json >"$KERNELS_JSON"

echo "== T2 cache + SOCS sections =="
T2_LOG=$(mktemp)
# POC_CACHE stays unset: the bench runs its cache section with the cache
# explicitly off then on over the same design (POC_CACHE=0 would force
# every flow off and void the comparison).
./build/bench/bench_t2_timing_comparison | tee "$T2_LOG"

# CACHE_BENCH name=<n> cache=<on|off> wall_ms=<ms> hit_rate=<0..1>
# SOCS_BENCH  name=<n> mode=<abbe|socs_draft|socs_full> wall_ms=<ms> ws=<ps>
# SOCS_T2     design=<d> ws_change_pct=<pct> spearman=<r> top10_displaced=<n>
# FAULT_BENCH name=<n> containment=<on|off> wall_ms=<ms> ws=<ps>
# JOURNAL_BENCH name=<n> journal=<off|on|resume> wall_ms=<ms> ws=<ps> replayed=<k>
# INCR_BENCH  name=<n> k=<gates> mode=<full|incr> wall_us=<us> ws=<ps>
awk '
  /^CACHE_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    row = sprintf("    {\"name\": \"%s_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"ms\", \"hit_rate\": %s}",
                  v["name"], v["cache"], v["wall_ms"], v["hit_rate"])
    crows = crows (crows == "" ? "" : ",\n") row
    cms[v["cache"]] = v["wall_ms"]
  }
  /^SOCS_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    sms[v["mode"]] = v["wall_ms"]
    srow[v["mode"]] = sprintf("    {\"name\": \"%s_%s\", \"real_time\": %s, " \
                              "\"time_unit\": \"ms\", \"annot_ws_ps\": %s}",
                              v["name"], v["mode"], v["wall_ms"], v["ws"])
  }
  /^SOCS_T2 / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    t2 = sprintf("  \"socs_t2\": {\"design\": \"%s\", \"ws_change_pct\": %s, " \
                 "\"spearman\": %s, \"top10_displaced\": %s},",
                 v["design"], v["ws_change_pct"], v["spearman"],
                 v["top10_displaced"])
  }
  /^FAULT_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    row = sprintf("    {\"name\": \"%s_containment_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"ms\", \"annot_ws_ps\": %s}",
                  v["name"], v["containment"], v["wall_ms"], v["ws"])
    frows = frows (frows == "" ? "" : ",\n") row
    fms[v["containment"]] = v["wall_ms"]
    fws[v["containment"]] = v["ws"]
  }
  /^JOURNAL_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    row = sprintf("    {\"name\": \"%s_journal_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"ms\", \"annot_ws_ps\": %s, " \
                  "\"replayed\": %s}",
                  v["name"], v["journal"], v["wall_ms"], v["ws"], v["replayed"])
    jrows = jrows (jrows == "" ? "" : ",\n") row
    jms[v["journal"]] = v["wall_ms"]
    jws[v["journal"]] = v["ws"]
  }
  /^BATCH_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    row = sprintf("    {\"name\": \"%s_batch_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"ms\", \"annot_ws_ps\": %s}",
                  v["name"], v["batch"], v["wall_ms"], v["ws"])
    brows = brows (brows == "" ? "" : ",\n") row
    bms[v["batch"]] = v["wall_ms"]
    bws[v["batch"]] = v["ws"]
  }
  /^INCR_BENCH / {
    for (i = 2; i <= NF; ++i) { split($i, kv, "="); v[kv[1]] = kv[2] }
    key = v["name"] "_k" v["k"]
    row = sprintf("    {\"name\": \"%s_%s\", \"real_time\": %s, " \
                  "\"time_unit\": \"us\", \"ws_ps\": %s}",
                  key, v["mode"], v["wall_us"], v["ws"])
    irows = irows (irows == "" ? "" : ",\n") row
    ius[key "_" v["mode"]] = v["wall_us"]
    if (index(ikeys "|", "|" key "|") == 0) ikeys = ikeys "|" key
  }
  END {
    printf "{\n  \"cache_bench\": [\n%s\n  ],\n", crows
    if (cms["off"] > 0 && cms["on"] > 0)
      printf "  \"cache_speedup\": %.3f,\n", cms["off"] / cms["on"]
    srows = srow["abbe"] ",\n" srow["socs_draft"] ",\n" srow["socs_full"]
    printf "  \"socs_e2e\": [\n%s\n  ],\n", srows
    if (sms["abbe"] > 0) {
      printf "  \"socs_e2e_draft_speedup\": %.3f,\n", sms["abbe"] / sms["socs_draft"]
      printf "  \"socs_e2e_full_speedup\": %.3f,\n", sms["abbe"] / sms["socs_full"]
    }
    if (frows != "") {
      printf "  \"fault_bench\": [\n%s\n  ],\n", frows
      if (fms["off"] > 0 && fms["on"] > 0) {
        pct = (fms["on"] / fms["off"] - 1.0) * 100.0
        printf "  \"fault_overhead_pct\": %.3f,\n", pct
        printf "  \"fault_overhead_ok\": %s,\n", (pct <= 2.0) ? "true" : "false"
      }
      printf "  \"fault_ws_identical\": %s,\n", (fws["on"] == fws["off"]) ? "true" : "false"
    }
    if (brows != "") {
      printf "  \"batch_bench\": [\n%s\n  ],\n", brows
      if (bms["off"] > 0 && bms["auto"] > 0)
        printf "  \"batch_e2e_speedup\": %.3f,\n", bms["off"] / bms["auto"]
      printf "  \"batched_ws_identical\": %s,\n", \
             (bws["auto"] == bws["off"]) ? "true" : "false"
    }
    if (jrows != "") {
      printf "  \"journal_bench\": [\n%s\n  ],\n", jrows
      if (jms["off"] > 0 && jms["on"] > 0)
        printf "  \"journal_overhead_pct\": %.3f,\n", (jms["on"] / jms["off"] - 1.0) * 100.0
      if (jms["resume"] > 0 && jms["off"] > 0)
        printf "  \"journal_resume_speedup\": %.1f,\n", jms["off"] / jms["resume"]
      printf "  \"journal_ws_identical\": %s,\n", \
             (jws["on"] == jws["off"] && jws["resume"] == jws["off"]) ? "true" : "false"
    }
    if (irows != "") {
      printf "  \"incr_bench\": [\n%s\n  ],\n", irows
      n = split(substr(ikeys, 2), keys, "|")
      printf "  \"incr_speedup\": {"
      first = 1
      for (i = 1; i <= n; ++i) {
        key = keys[i]
        if (ius[key "_full"] > 0 && ius[key "_incr"] > 0) {
          printf "%s\"%s\": %.2f", (first ? "" : ", "), key, \
                 ius[key "_full"] / ius[key "_incr"]
          first = 0
        }
      }
      printf "},\n"
    }
    if (t2 != "") print t2
  }
' "$T2_LOG" >"$OUT"

# Kernel timings reduced to name/real_time/unit (+label when present —
# the SOCS kernel sweep stores its cd_delta_nm accuracy figure there),
# followed by the per-quality Abbe-over-SOCS aerial-image speedups.
# google-benchmark prints "label" after "time_unit", so a record is only
# complete when the next "name" (or EOF) arrives — flush there.
#
# The PR6 scalar-SOCS baseline row (same BM_AerialImageSocs/3 fixture)
# comes from the committed BENCH_PR6.json so the batch_speedup headline
# can be stated against the pre-rewrite scalar lane.
PR6_SOCS3=$(sed -n 's/.*"BM_AerialImageSocs\/3", "real_time": \([0-9.e+-]*\).*/\1/p' \
    BENCH_PR6.json 2>/dev/null | head -1)
awk -v pr6_socs3="${PR6_SOCS3:-0}" '
  function flush_row() {
    if (name == "") return
    row = sprintf("    {\"name\": \"%s\", \"real_time\": %s, \"time_unit\": \"%s\"",
                  name, rt, unit)
    if (label != "") row = row sprintf(", \"label\": \"%s\"", label)
    row = row "}"
    rows = rows (rows == "" ? "" : ",\n") row
    if (name ~ /^BM_AerialImage\//)     { q = name; sub(/^.*\//, "", q); abbe[q] = rt }
    if (name ~ /^BM_AerialImageSocs\//) { q = name; sub(/^.*\//, "", q); socs[q] = rt }
    if (name ~ /^BM_AerialImageSocsFine/) fine = rt
    if (name ~ /^BM_AerialImageSocsBatched\//) {
      b = name; sub(/^.*\//, "", b); brt[b] = rt
      if (label !~ /batched_identical=1/) lanes_differ = 1
    }
    name = ""; label = ""
  }
  /"run_name":/ || /"aggregate_name":/ { next }
  /"name":/  { flush_row()
               name = $0; sub(/^.*"name": "/, "", name); sub(/".*$/, "", name) }
  /"label":/ { label = $0; sub(/^.*"label": "/, "", label); sub(/".*$/, "", label) }
  /"real_time":/ { rt = $0; sub(/^.*"real_time": /, "", rt); sub(/,.*$/, "", rt) }
  /"time_unit":/ { unit = $0; sub(/^.*"time_unit": "/, "", unit); sub(/".*$/, "", unit) }
  END {
    flush_row()
    printf "  \"kernels\": [\n%s\n  ],\n", rows
    # Per-window batched-over-scalar speedup at fine quality: the
    # BM_AerialImageSocsBatched/N row times a whole batch, so per-window
    # time is real_time / N.  batch_speedup_in_binary is the best width
    # against the current (already-rewritten) scalar lane; batch_speedup
    # — the PR7 acceptance headline, >= 2x — is stated against the PR6
    # scalar SOCS path by folding in scalar_lane_uplift, the measured
    # gain of the rewrite itself on the identical BM_AerialImageSocs/3
    # fixture (see the header comment; a direct PR6-rebuild probe
    # measured the combined gain higher, 2.7x).  batched_lane_identical
    # comes from the label every batched row asserts (lane 0 bit-equal
    # to scalar).
    if (fine > 0) {
      printf "  \"batch_per_window_speedup\": {"
      first = 1
      best = 0
      for (b in brt)
        if (brt[b] > 0) {
          spd = fine / (brt[b] / b)
          if (spd > best) best = spd
          printf "%s\"batch_%s\": %.3f", (first ? "" : ", "), b, spd
          first = 0
        }
      printf "},\n"
      if (best > 0) {
        printf "  \"batch_speedup_in_binary\": %.3f,\n", best
        if (pr6_socs3 > 0 && socs[3] > 0) {
          uplift = pr6_socs3 / socs[3]
          printf "  \"scalar_lane_uplift\": %.3f,\n", uplift
          printf "  \"batch_speedup\": %.3f,\n", best * uplift
        }
      }
      printf "  \"batched_lane_identical\": %s,\n", lanes_differ ? "false" : "true"
    }
    printf "  \"socs_per_window_speedup\": {"
    first = 1
    for (q = 1; q <= 3; ++q)
      if (abbe[q] > 0 && socs[q] > 0) {
        printf "%s\"quality_%d\": %.3f", (first ? "" : ", "), q, abbe[q] / socs[q]
        first = 0
      }
    printf "}\n}\n"
  }
' "$KERNELS_JSON" >>"$OUT"

rm -f "$KERNELS_JSON" "$T2_LOG"

# Warn-and-flag fault-overhead gate (the BENCH_PR5 11.8 % watch item): the
# JSON carries fault_overhead_ok for CI's bench-smoke job to hard-fail on;
# local runs only warn, because single-vCPU hosts time noisily.
FAULT_PCT=$(sed -n 's/.*"fault_overhead_pct": \([-0-9.]*\).*/\1/p' "$OUT")
if [ -n "$FAULT_PCT" ] && awk "BEGIN{exit !($FAULT_PCT > 2.0)}"; then
  echo "WARNING: fault_overhead_pct=$FAULT_PCT is above the 2.0% acceptance band" >&2
fi

echo "wrote $OUT"
