#!/usr/bin/env bash
# Crash-recovery gate: proves the durable-run contract end to end, outside
# the unit tests, with a real SIGKILL.
#
#   1. reference: an uninterrupted run in a fresh journal directory records
#      the ground-truth annotated worst slack;
#   2. crash: a fresh journaled run SIGKILLs itself mid-flow (the journal's
#      deterministic kill hook, POC_JOURNAL_KILL_AFTER) — exit must be 137;
#   3. resume at 1 thread, then re-resume at 4 threads: both must replay
#      from the journal (replayed > 0) and print an annotated worst slack
#      bit-identical (string-identical at %.9f) to the reference.
#
# Usage: scripts/crash_recovery.sh [build-dir]
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/examples/resumable_flow"
JOURNAL=$(mktemp -d)
trap 'rm -rf "$JOURNAL"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "crash_recovery: $BIN not built" >&2
  exit 1
fi

ws_of() { grep -o 'ws=[0-9.-]*' <<<"$1" | head -1 | cut -d= -f2; }
replayed_of() { grep -o 'replayed=[0-9]*' <<<"$1" | head -1 | cut -d= -f2; }

echo "== crash_recovery: reference (uninterrupted) run =="
REF_OUT=$("$BIN" --fresh --journal "$JOURNAL/ref" --threads 4 2>&1) || {
  echo "$REF_OUT"; echo "crash_recovery: reference run failed" >&2; exit 1
}
REF_WS=$(ws_of "$REF_OUT")
echo "reference annotated WS: $REF_WS ps"
[[ -n "$REF_WS" ]] || { echo "crash_recovery: no RESUME line" >&2; exit 1; }

echo "== crash_recovery: SIGKILL mid-flow (kill hook after 17 windows) =="
"$BIN" --fresh --journal "$JOURNAL/run" --threads 4 --kill-after 17
STATUS=$?
if [[ "$STATUS" -ne 137 ]]; then
  echo "crash_recovery: expected SIGKILL exit 137, got $STATUS" >&2
  exit 1
fi
echo "killed as expected (exit 137)"

for THREADS in 1 4; do
  echo "== crash_recovery: resume at $THREADS thread(s) =="
  OUT=$("$BIN" --journal "$JOURNAL/run" --threads "$THREADS" 2>&1)
  STATUS=$?
  echo "$OUT" | grep RESUME
  if [[ "$STATUS" -ne 0 ]]; then
    echo "$OUT"; echo "crash_recovery: resume failed" >&2; exit 1
  fi
  WS=$(ws_of "$OUT")
  REPLAYED=$(replayed_of "$OUT")
  if [[ "$REPLAYED" -eq 0 ]]; then
    echo "crash_recovery: resume recomputed everything (replayed=0)" >&2
    exit 1
  fi
  if [[ "$WS" != "$REF_WS" ]]; then
    echo "crash_recovery: annotated WS diverged: $WS != $REF_WS" >&2
    exit 1
  fi
done

echo "== crash_recovery: resumed WS bit-identical at 1 and 4 threads =="
