#!/usr/bin/env bash
# Chaos smoke gate: a seeded random fault matrix over real fork/exec
# sharded runs — every leg injects one fault class at a random worker
# count and must finish with an annotated worst slack string-identical
# (%.9f) to a clean 1-worker reference run.
#
# Fault classes (one leg each, worker count drawn from {1,2,4} by a
# seeded LCG so CI failures reproduce with the printed CHAOS_SEED):
#
#   hang     — worker 0 stops heartbeating mid-shard (--stall-after); the
#              coordinator watchdog must kill it, respawn it, and the
#              respawn resumes from the sealed private journal.  Reported
#              interventions must be non-zero.
#   kill -9  — worker 0 SIGKILLs itself mid-shard (--kill-after); the
#              coordinator salvages the private journal and recomputes the
#              residual.  Reported shard faults must be non-zero.
#   enospc   — every journal write in workers AND coordinator fails with
#              injected ENOSPC (--fault-journal-enospc): the run loses all
#              durability, degrades to recompute, and must still match.
#   eio      — every disk-cache publish fails with injected EIO
#              (--fault-disk-eio): the disk tier goes down, the memory
#              tier keeps serving, and the result must still match.
#
# Usage: scripts/chaos_smoke.sh [build-dir] [design]
#        CHAOS_SEED=<n> to reproduce a specific matrix.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
DESIGN="${2:-tiled30}"
SEED="${CHAOS_SEED:-7}"
BIN="$BUILD/examples/shard_worker"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$BIN" ]]; then
  echo "chaos_smoke: $BIN not built" >&2
  exit 1
fi

ws_of()    { grep -o 'ws=[0-9.-]*'    <<<"$1" | head -1 | cut -d= -f2; }
field_of() { grep -o "$2=[0-9][0-9]*" <<<"$1" | head -1 | cut -d= -f2; }

# Seeded LCG: the worker count of each leg is a pure function of
# CHAOS_SEED, so any red leg reproduces exactly.
STATE=$SEED
# Sets W.  No command substitution: a $(...) subshell would throw away the
# LCG state and every leg would draw the same count.
pick_workers() {
  STATE=$(( (STATE * 1103515245 + 12345) % 2147483648 ))
  local counts=(1 2 4)
  # High bits: an LCG's low bits are far from uniform modulo small numbers.
  W="${counts[$(((STATE >> 16) % 3))]}"
}

echo "== chaos_smoke: seed=$SEED design=$DESIGN =="
echo "== chaos_smoke: reference — clean 1-worker run =="
OUT=$("$BIN" --design "$DESIGN" --workers 1 --threads 1 --fresh \
      --work-dir "$WORK/ref" 2>&1) || {
  echo "$OUT"; echo "chaos_smoke: reference run failed" >&2; exit 1
}
echo "$OUT" | grep SHARD_RESULT
REF_WS=$(ws_of "$OUT")
[[ -n "$REF_WS" ]] || { echo "chaos_smoke: no SHARD_RESULT line" >&2; exit 1; }

# run_leg <name> <require-field|none> <worker-args...>
# Runs one faulted coordinator leg; hard-fails unless it exits 0, prints a
# worst slack string-identical to the reference, and (when asked) reports
# a non-zero <require-field> on its SHARD_RESULT line.
run_leg() {
  local name=$1; shift
  local require=$1; shift
  echo "== chaos_smoke: $name =="
  local out
  out=$("$BIN" "$@" 2>&1)
  local rc=$?
  echo "$out" | grep -E 'SHARD_RESULT|SHARD_REDISTRIBUTE|intervention' || true
  if [[ $rc -ne 0 ]]; then
    echo "$out"
    echo "chaos_smoke: $name exited $rc" >&2
    exit 1
  fi
  local ws
  ws=$(ws_of "$out")
  if [[ "$ws" != "$REF_WS" ]]; then
    echo "chaos_smoke: $name WS diverged: $ws != $REF_WS" >&2
    exit 1
  fi
  if [[ "$require" != "none" ]]; then
    local n
    n=$(field_of "$out" "$require")
    if [[ "${n:-0}" -eq 0 ]]; then
      echo "chaos_smoke: $name must report non-zero $require" >&2
      exit 1
    fi
  fi
}

pick_workers
run_leg "hang: stall worker 0, $W worker(s), watchdog heals" interventions \
  --design "$DESIGN" --workers "$W" --threads 1 --fresh \
  --work-dir "$WORK/hang" \
  --stall-worker 0 --stall-after 2 \
  --watchdog-timeout-ms 1500 --watchdog-poll-ms 25 \
  --watchdog-retries 2 --watchdog-backoff-ms 20

pick_workers
run_leg "kill -9: worker 0 dies mid-shard, $W worker(s)" shard_faults \
  --design "$DESIGN" --workers "$W" --threads 1 --fresh \
  --work-dir "$WORK/kill" \
  --kill-worker 0 --kill-after 5

pick_workers
run_leg "enospc: journal writes fail everywhere, $W worker(s)" shard_faults \
  --design "$DESIGN" --workers "$W" --threads 1 --fresh \
  --work-dir "$WORK/enospc" \
  --fault-journal-enospc

pick_workers
run_leg "eio: disk-cache publishes fail, $W worker(s)" none \
  --design "$DESIGN" --workers "$W" --threads 1 --fresh \
  --work-dir "$WORK/eio" \
  --fault-disk-eio

echo "== chaos_smoke: worst slack bit-identical across all injected faults =="
