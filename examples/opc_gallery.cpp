// Visual gallery: renders SVGs of a cell's poly layer showing the drawn
// target, the model-based OPC mask (serifs, hammerheads, jogs), and the
// simulated print contours at nominal exposure and at a defocus corner.
//
//   ./opc_gallery [cell] [outdir]          (default: NAND2_X1 .)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/cdx/contour.h"
#include "src/common/log.h"
#include "src/geom/polygon_ops.h"
#include "src/layout/svg_dump.h"
#include "src/litho/simulator.h"
#include "src/opc/opc_engine.h"
#include "src/stdcell/library.h"

using namespace poc;

namespace {

SvgContour to_svg_contour(const ContourPath& path, const char* color) {
  SvgContour c;
  c.stroke = color;
  c.closed = path.closed;
  for (const ContourPoint& p : path.points) c.points.emplace_back(p.x, p.y);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string cell_name = argc > 1 ? argv[1] : "NAND2_X1";
  const std::string outdir = argc > 2 ? argv[2] : ".";

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const CellLayout cell = lib.layout(cell_name, Tech::default_tech());

  std::vector<Polygon> targets;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) targets.push_back(s.poly);
  }
  const Rect window = cell.boundary.inflated(400);

  const LithoSimulator sim;
  const OpcEngine engine(sim, OpcOptions{});
  const OpcResult opc = engine.correct(targets, window);
  std::printf("OPC: %zu fragments, residual body EPE %.2f nm\n",
              opc.fragments.size(), opc.max_abs_epe_body_nm);

  const auto contours_at = [&](const std::vector<Rect>& mask,
                               const Exposure& e) {
    const Image2D latent = sim.latent(mask, window, e, LithoQuality::kFine);
    return trace_contours(latent, sim.print_threshold());
  };

  const auto render = [&](const std::string& file,
                          const std::vector<Polygon>& mask_polys,
                          const std::vector<Rect>& mask_rects,
                          const char* contour_color, const Exposure& e) {
    std::vector<SvgLayer> layers;
    layers.push_back({"target", "#9ecae1", "#3182bd", 0.5, targets});
    layers.push_back({"mask", "none", "#e6550d", 1.0, mask_polys});
    std::vector<SvgContour> overlays;
    for (const ContourPath& p : contours_at(mask_rects, e)) {
      overlays.push_back(to_svg_contour(p, contour_color));
    }
    std::ofstream os(outdir + "/" + file);
    write_svg(os, window, layers, overlays);
    std::printf("wrote %s/%s\n", outdir.c_str(), file.c_str());
  };

  std::vector<Rect> drawn_rects;
  for (const Polygon& p : targets) {
    for (const Rect& r : decompose(p)) drawn_rects.push_back(r);
  }
  render(cell_name + "_no_opc.svg", {}, drawn_rects, "#31a354", {});
  render(cell_name + "_opc_nominal.svg", opc.corrected, opc.mask_rects(),
         "#31a354", {});
  render(cell_name + "_opc_defocus.svg", opc.corrected, opc.mask_rects(),
         "#756bb1", {150.0, 1.05});
  return 0;
}
