// The paper's end-to-end flow on a generated design:
//
//   netlist -> place & route -> baseline STA (tag critical gates)
//           -> per-window OPC -> post-OPC CD extraction
//           -> equivalent-gate back-annotation -> silicon-calibrated STA
//           -> drawn-vs-annotated comparison.
//
//   ./full_chip_flow [benchmark]        (default: adder8)
#include <cstdio>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/sta/paths.h"

using namespace poc;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string bench = argc > 1 ? argv[1] : "adder8";

  // Cell library (characterized once, cached).
  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());

  // Physical implementation.
  const Netlist nl = make_benchmark(bench);
  std::printf("design %s: %zu gates, %zu nets, logic depth %zu\n",
              nl.name().c_str(), nl.num_gates(), nl.num_nets(),
              nl.logic_depth());
  const PlacedDesign design = place_and_route(nl, lib);

  // Clock with a 12 % margin over the drawn-CD critical path.
  FlowOptions opts;
  {
    PostOpcFlow probe(design, lib);
    opts.sta.clock_period = probe.run_sta(nullptr).worst_arrival * 1.12;
  }
  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);

  // Step 1: tag critical gates from the drawn-CD baseline.
  const auto critical = flow.tag_critical_gates(opts.sta.clock_period * 0.05);
  std::printf("tagged %zu critical gates\n", critical.size());

  // Steps 2-5: OPC, extraction, back-annotation, comparison.
  flow.run_opc(OpcMode::kModelBased);
  const TimingComparison cmp = flow.compare_timing();

  std::printf("\n--- drawn-CD timing ---\n");
  std::printf("worst arrival %.1f ps, worst slack %.1f ps, leakage %.3f uA\n",
              cmp.drawn.worst_arrival, cmp.drawn.worst_slack,
              cmp.drawn.total_leakage_ua);
  std::printf("critical path: %s\n",
              format_path(design.netlist, cmp.drawn.paths[0]).c_str());

  std::printf("\n--- post-OPC (silicon-calibrated) timing ---\n");
  std::printf("worst arrival %.1f ps, worst slack %.1f ps, leakage %.3f uA\n",
              cmp.annotated.worst_arrival, cmp.annotated.worst_slack,
              cmp.annotated.total_leakage_ua);
  std::printf("critical path: %s\n",
              format_path(design.netlist, cmp.annotated.paths[0]).c_str());

  std::printf("\n--- discrepancy (the paper's headline) ---\n");
  std::printf("worst-case slack change: %+.1f %%\n",
              cmp.worst_slack_change_pct);
  std::printf("leakage change:          %+.1f %%\n", cmp.leakage_change_pct);
  std::printf("path-rank spearman %.3f, top-10 displaced %zu, "
              "rank-1 changed: %s\n",
              cmp.ranks.spearman, cmp.ranks.top10_displaced,
              cmp.ranks.rank1_changed ? "yes" : "no");
  return 0;
}
