// Design-intent-driven OPC: pass the STA's criticality information to the
// mask-synthesis step, spending expensive model-based correction only where
// timing needs it (the paper's "selective OPC" extension).
//
//   ./selective_opc [benchmark] [slack_window_ps]    (default: adder8 30)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"

using namespace poc;

namespace {

struct Outcome {
  OpcStats stats;
  Ps worst_slack;
};

Outcome evaluate(PostOpcFlow& flow) {
  const auto ann = flow.annotate(flow.extract({}));
  return {flow.opc_stats(), flow.run_sta(&ann).worst_slack};
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string bench = argc > 1 ? argv[1] : "adder8";
  const double window_ps = argc > 2 ? std::atof(argv[2]) : 30.0;

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const Netlist nl = make_benchmark(bench);
  const PlacedDesign design = place_and_route(nl, lib);

  FlowOptions opts;
  {
    PostOpcFlow probe(design, lib);
    opts.sta.clock_period = probe.run_sta(nullptr).worst_arrival * 1.12;
  }
  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);

  const auto critical = flow.tag_critical_gates(window_ps);
  std::printf("design %s: %zu gates, %zu tagged critical (slack window %.0f "
              "ps)\n",
              bench.c_str(), nl.num_gates(), critical.size(), window_ps);

  flow.run_opc_selective(critical);
  const Outcome selective = evaluate(flow);

  flow.run_opc(OpcMode::kModelBased);
  const Outcome full = evaluate(flow);

  flow.run_opc(OpcMode::kRuleBased);
  const Outcome rule = evaluate(flow);

  std::printf("\npolicy                 model windows  litho iters  worst "
              "slack (ps)\n");
  std::printf("rule-based everywhere  %6zu/%zu      %6zu       %8.2f\n",
              rule.stats.model_based_windows, rule.stats.windows,
              rule.stats.iterations, rule.worst_slack);
  std::printf("selective              %6zu/%zu      %6zu       %8.2f\n",
              selective.stats.model_based_windows, selective.stats.windows,
              selective.stats.iterations, selective.worst_slack);
  std::printf("model-based everywhere %6zu/%zu      %6zu       %8.2f\n",
              full.stats.model_based_windows, full.stats.windows,
              full.stats.iterations, full.worst_slack);
  std::printf("\nselective OPC recovers %.1f %% of the full-OPC slack benefit "
              "at %.0f %% of the litho cost\n",
              (selective.worst_slack - rule.worst_slack) /
                  (full.worst_slack - rule.worst_slack + 1e-9) * 100.0,
              100.0 * static_cast<double>(selective.stats.iterations) /
                  static_cast<double>(full.stats.iterations));
  return 0;
}
