// Design-driven metrology loop: generate a CD-SEM plan from the design
// database, "measure" the silicon, quantify the OPC model's prediction
// error, and recalibrate the model dose against the measurements — the
// production feedback loop that keeps extraction "silicon-calibrated".
//
//   ./metrology_loop [benchmark] [sites]       (default: c17 16)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/metro/metrology.h"
#include "src/netlist/generators.h"

using namespace poc;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string bench = argc > 1 ? argv[1] : "c17";
  const std::size_t sites = argc > 2 ? std::atoi(argv[2]) : 16;

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const Netlist nl = make_benchmark(bench);
  const PlacedDesign design = place_and_route(nl, lib);
  PostOpcFlow flow(design, lib);
  flow.run_opc(OpcMode::kModelBased);

  // 1. Measurement plan straight from the design database.
  const MetrologyPlan plan = design_driven_plan(design, sites);
  std::printf("design-driven plan: %zu sites (from %zu gates)\n",
              plan.sites.size(), nl.num_gates());
  for (std::size_t i = 0; i < std::min<std::size_t>(4, plan.sites.size());
       ++i) {
    const MeasurementSite& s = plan.sites[i];
    std::printf("  site %zu: %-14s at (%lld, %lld), target %.0f nm\n", i,
                s.device.c_str(), static_cast<long long>(s.location.x),
                static_cast<long long>(s.location.y), s.target_cd_nm);
  }

  // 2. CD-SEM run on the (simulated) silicon.
  CdSemParams sem;
  Rng rng(2026);
  const auto measurements = simulate_cdsem(flow, plan, {0.0, 1.0}, sem, rng);
  double mean = 0.0;
  for (const auto& m : measurements) mean += m.measured_cd_nm;
  mean /= static_cast<double>(measurements.size());
  std::printf("\nmeasured mean CD: %.2f nm (drawn 90, SEM noise %.1f nm)\n",
              mean, sem.noise_sigma_nm);

  // 3-4. Model error and dose recalibration.
  const CalibrationResult cal = calibrate_model_dose(flow, measurements);
  std::printf("OPC model error before calibration: %+.2f nm\n",
              cal.mean_error_before_nm);
  std::printf("fitted dose correction:             x%.4f\n",
              cal.dose_correction);
  std::printf("OPC model error after calibration:  %+.2f nm\n",
              cal.mean_error_after_nm);
  std::printf(
      "\nWith the recalibrated model, the next mask revision's OPC converges\n"
      "on silicon instead of on a stale model — the feedback that keeps\n"
      "post-OPC timing extraction honest.\n");
  return 0;
}
