// Quickstart: the library in ~60 lines.
//
// One inverter cell: simulate its poly layer through lithography, run OPC,
// extract the printed gate CD, build the equivalent transistor, and see the
// delay shift the back-annotation would apply.
//
//   ./quickstart
#include <cstdio>

#include "src/cdx/cd_extract.h"
#include "src/device/nonrect.h"
#include "src/geom/polygon_ops.h"
#include "src/litho/simulator.h"
#include "src/opc/opc_engine.h"
#include "src/stdcell/layout_gen.h"

using namespace poc;

int main() {
  // 1. A standard-cell layout (procedurally generated INV_X1).
  const CellSpec inv = find_spec(standard_cell_specs(), "INV_X1");
  const Tech& tech = Tech::default_tech();
  const CellLayout cell = generate_cell_layout(inv, tech);
  std::printf("cell %s: %zu shapes, %zu annotated transistor gates\n",
              cell.name.c_str(), cell.shapes.size(), cell.gates.size());

  // 2. Collect the poly-layer polygons and pick a litho window.
  std::vector<Polygon> poly;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) poly.push_back(s.poly);
  }
  const Rect window = cell.boundary.inflated(600);

  // 3. Model-based OPC, then patterning simulation of the corrected mask.
  const LithoSimulator sim;  // 193 nm, NA 0.75, annular 0.5/0.8
  const OpcEngine opc(sim, OpcOptions{});
  const OpcResult corrected = opc.correct(poly, window);
  std::printf("OPC: %zu fragments, %zu iterations, residual body EPE %.2f nm\n",
              corrected.fragments.size(), corrected.iterations,
              corrected.max_abs_epe_body_nm);
  const Image2D latent =
      sim.latent(corrected.mask_rects(), window, Exposure{0.0, 1.0});

  // 4. Post-OPC extraction of the NMOS gate's critical dimension.
  const GateInfo& gate = cell.gates[0];  // MN_A_0
  const GateCdProfile profile = extract_gate_cd(
      latent, sim.print_threshold(), gate.region, /*vertical_poly=*/true);
  std::printf("gate %s: drawn %.0f nm, printed mean %.2f nm "
              "(slices %.2f..%.2f)\n",
              gate.device.c_str(), profile.drawn_cd_nm, profile.mean_cd(),
              profile.min_cd(), profile.max_cd());

  // 5. Equivalent rectangular transistor (separate drive/leakage lengths).
  const MosfetParams nmos = MosfetParams::nmos();
  const EquivalentGate eq =
      equivalent_gate(profile, static_cast<double>(gate.drawn_w), nmos);
  std::printf("equivalent gate: Leff(drive) %.2f nm, Leff(leak) %.2f nm\n",
              eq.l_eff_drive_nm, eq.l_eff_leak_nm);
  std::printf("back-annotation: delay x%.4f, leakage x%.4f vs drawn\n",
              1.0 / eq.drive_ratio_vs(profile.drawn_cd_nm, nmos),
              eq.leak_ratio_vs(profile.drawn_cd_nm, nmos));
  return 0;
}
