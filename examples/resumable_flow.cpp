// Durable full-chip run demo: write-ahead journal, kill, resume.
//
// The flow journals every completed window (OPC, extraction, hotspot scan)
// to an on-disk write-ahead log.  Kill the process at any point — SIGKILL
// included — and the next invocation with the same options replays the
// journal and recomputes only the missing windows, producing a timing
// comparison bit-identical to an uninterrupted run.
//
//   ./resumable_flow                        run (or resume) the flow
//   ./resumable_flow --kill-after N         SIGKILL self after N appended
//                                           windows (deterministic "crash")
//   ./resumable_flow --journal DIR          journal directory (default
//                                           $TMPDIR/poc_resumable_journal)
//   ./resumable_flow --fresh                wipe the journal first
//   ./resumable_flow --threads N            hot-loop threads (default 0 =
//                                           hardware concurrency; resume is
//                                           thread-count independent)
//
// Try:  ./resumable_flow --fresh --kill-after 20   (dies mid-OPC)
//       ./resumable_flow                           (resumes, finishes)
//
// Ctrl-C is handled gracefully: in-flight windows drain and are journaled,
// the journal is flushed, and the run exits resumable — a second Ctrl-C
// kills immediately (still resumable up to the last flushed window).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/run/shutdown.h"

using namespace poc;

namespace {

/// A 48-stage inverter chain: rows of one identical cell, so the window
/// workload is uniform and the journal record count is easy to predict.
PlacedDesign make_inv_chain(const StdCellLibrary& lib, int stages) {
  Netlist chain("inv_chain" + std::to_string(stages));
  NetIdx prev = chain.add_net("in");
  chain.mark_primary_input(prev);
  for (int i = 0; i < stages; ++i) {
    const NetIdx out = chain.add_net("c" + std::to_string(i));
    chain.add_gate("inv" + std::to_string(i), "INV_X1", {prev}, out);
    prev = out;
  }
  chain.mark_primary_output(prev);
  return place_and_route(chain, lib);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  std::string journal_dir =
      (std::filesystem::temp_directory_path() / "poc_resumable_journal")
          .string();
  std::size_t kill_after = 0;
  std::size_t threads = 0;
  bool fresh = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
      kill_after = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fresh") == 0) {
      fresh = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (fresh) std::filesystem::remove_all(journal_dir);

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const PlacedDesign design = make_inv_chain(lib, 48);
  std::printf("design %s: %zu gates, journal at %s\n",
              design.netlist.name().c_str(), design.netlist.num_gates(),
              journal_dir.c_str());

  FlowOptions opts;
  opts.sta.clock_period = 2200.0;
  opts.threads = threads;
  opts.journal.enabled = true;
  opts.journal.path = journal_dir;
  opts.journal.kill_after_appends = kill_after;  // 0 = no deterministic crash

  // SIGINT/SIGTERM now drain in-flight windows and flush the journal
  // before the run unwinds with FaultCode::kCancelled.
  ScopedGracefulShutdown graceful;

  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);
  for (const ReplayIssue& issue : flow.journal_issues()) {
    std::printf("journal reject: %s @%llu: %s\n", issue.segment.c_str(),
                static_cast<unsigned long long>(issue.offset),
                issue.detail.c_str());
  }
  const std::size_t replayable = flow.journal_stats().loaded_records;
  if (replayable > 0) {
    std::printf("resuming: %zu journaled windows available for replay\n",
                replayable);
  } else if (kill_after > 0) {
    std::printf("fresh run; process will SIGKILL itself after %zu windows\n",
                kill_after);
  }

  try {
    flow.run_opc(OpcMode::kModelBased);
    const TimingComparison cmp = flow.compare_timing();

    const RunJournal::Stats stats = flow.journal_stats();
    std::printf("\nwindows replayed from journal: %zu\n", stats.replayed_hits);
    std::printf("windows recomputed this run:   %zu\n",
                stats.appended_records);
    std::printf("annotated worst slack: %.9f ps (drawn %.9f ps)\n",
                cmp.annotated.worst_slack, cmp.drawn.worst_slack);
    // Greppable one-liner for scripts/crash_recovery.sh: the annotated
    // worst slack must be bit-identical across kill/resume.
    std::printf("RESUME replayed=%zu recomputed=%zu ws=%.9f\n",
                stats.replayed_hits, stats.appended_records,
                cmp.annotated.worst_slack);
    return 0;
  } catch (const FlowException& e) {
    if (e.error().code == FaultCode::kCancelled) {
      const RunJournal::Stats stats = flow.journal_stats();
      std::printf("\ncancelled by signal %d; %zu windows journaled — "
                  "run again to resume\n",
                  ScopedGracefulShutdown::last_signal(),
                  stats.loaded_records + stats.appended_records);
      return 130;
    }
    std::fprintf(stderr, "flow failed: %s\n", e.what());
    return 1;
  }
}
