// Selective gate-length biasing (design-intent DFM): swap every gate with
// slack to spare onto its long-channel "_LL" variant, then re-run the FULL
// post-OPC flow — place & route, window OPC, CD extraction, silicon-
// calibrated STA — to verify the leakage saving survives lithography.
//
//   ./leakage_recovery [benchmark] [slack_window_ps]   (default: adder8 25)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/core/gate_bias.h"
#include "src/netlist/generators.h"

using namespace poc;

namespace {

struct SiliconNumbers {
  Ps worst_slack;
  double leakage_ua;
};

SiliconNumbers silicon_timing(const Netlist& nl, const StdCellLibrary& lib,
                              Ps clock) {
  const PlacedDesign design = place_and_route(nl, lib);
  FlowOptions opts;
  opts.sta.clock_period = clock;
  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);
  flow.run_opc(OpcMode::kModelBased);
  const auto ann = flow.annotate(flow.extract({}));
  const StaReport r = flow.run_sta(&ann);
  return {r.worst_slack, r.total_leakage_ua};
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string bench = argc > 1 ? argv[1] : "adder8";
  const double window_ps = argc > 2 ? std::atof(argv[2]) : 25.0;

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const Netlist base = make_benchmark(bench);

  // Clock from the drawn baseline with a 12 % margin.
  Ps clock = 0.0;
  std::vector<GateIdx> critical;
  {
    const PlacedDesign design = place_and_route(base, lib);
    PostOpcFlow probe(design, lib);
    FlowOptions opts;
    opts.sta.clock_period = probe.run_sta(nullptr).worst_arrival * 1.12;
    clock = opts.sta.clock_period;
    PostOpcFlow tagger(design, lib, LithoSimulator{}, opts);
    critical = tagger.tag_critical_gates(window_ps);
  }
  std::printf("design %s: %zu gates, %zu kept fast (slack window %.0f ps), "
              "clock %.1f ps\n",
              bench.c_str(), base.num_gates(), critical.size(), window_ps,
              clock);

  const Netlist biased = with_long_gate_bias(base, critical);
  std::printf("running full silicon-calibrated flow on both variants ...\n");
  const SiliconNumbers before = silicon_timing(base, lib, clock);
  const SiliconNumbers after = silicon_timing(biased, lib, clock);

  std::printf("\n                      worst slack (ps)   leakage (uA)\n");
  std::printf("all fast (drawn 90)   %12.2f     %10.3f\n", before.worst_slack,
              before.leakage_ua);
  std::printf("selective L-bias      %12.2f     %10.3f\n", after.worst_slack,
              after.leakage_ua);
  std::printf("\nleakage saved: %.1f %%   slack cost: %.2f ps%s\n",
              (1.0 - after.leakage_ua / before.leakage_ua) * 100.0,
              before.worst_slack - after.worst_slack,
              after.worst_slack >= 0.0 ? "  (still meets timing)" : "");
  return 0;
}
