// Process-window exploration: sweep the exposure (focus, dose) plane, run
// the silicon-calibrated STA at every point, and print a timing-yield map —
// which part of the litho process window actually meets the clock.
//
//   ./process_window_explorer [benchmark] [clock_margin]  (default: adder4 0.12)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/var/variation.h"

using namespace poc;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string bench = argc > 1 ? argv[1] : "adder4";
  const double margin = argc > 2 ? std::atof(argv[2]) : 0.12;

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const Netlist nl = make_benchmark(bench);
  const PlacedDesign design = place_and_route(nl, lib);

  FlowOptions opts;
  {
    PostOpcFlow probe(design, lib);
    opts.sta.clock_period = probe.run_sta(nullptr).worst_arrival *
                            (1.0 + margin);
  }
  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);
  flow.run_opc(OpcMode::kModelBased);

  // Response surfaces for every gate keep the sweep cheap: 9 litho
  // extractions total, then each sweep point is a model evaluation + STA.
  std::printf("fitting CD response surfaces (9 litho conditions) ...\n");
  const auto responses = flow.fit_responses();

  const std::vector<double> focus_axis{-150, -120, -90, -60, -30, 0,
                                       30, 60, 90, 120, 150};
  const std::vector<double> dose_axis{0.94, 0.96, 0.98, 1.00,
                                      1.02, 1.04, 1.06};
  std::printf("\nworst slack (ps) over the process window "
              "[clock %.1f ps; '#' = violation]\n",
              opts.sta.clock_period);
  std::printf("dose\\focus");
  for (double f : focus_axis) std::printf("%7.0f", f);
  std::printf("\n");

  Rng rng(7);
  for (double dose : dose_axis) {
    std::printf("%9.2f ", dose);
    for (double focus : focus_axis) {
      const auto ext =
          flow.mc_extraction(responses, {focus, dose}, 0.0, rng);
      const auto ann = flow.annotate(ext);
      const Ps slack = flow.run_sta(&ann).worst_slack;
      std::printf("%6.1f%s", slack, slack < 0.0 ? "#" : " ");
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe usable process window for timing is the region of positive\n"
      "slack — typically an ellipse centred near nominal, shrinking with\n"
      "tighter clock margins.\n");
  return 0;
}
