// Sharded multi-process full-chip run demo: one binary, two modes.
//
// Coordinator (default): partitions the design's instance windows into one
// shard per worker, fork/execs itself (`/proc/self/exe --worker-mode ...`)
// once per shard, merges the workers' published journal segments in global
// window-index order, replays the merged journal through the standard
// restore path (residual windows recompute in-process), and runs STA once.
// Workers share a spill-to-disk window cache under the work dir, so a
// window computed by worker 0 is a disk hit for worker 3.
//
//   ./shard_worker --design tiled120 --workers 4        sharded run
//   ./shard_worker --workers 2 --policy interleaved     round-robin shards
//   ./shard_worker --workers 2 --kill-worker 1 --kill-after 10
//       worker 1 SIGKILLs itself after 10 journaled windows; the
//       coordinator salvages its private journal, recomputes the residual
//       windows, and the final timing comparison is bit-identical to an
//       undisturbed run (scripts/shard_smoke.sh asserts this).
//   ./shard_worker --workers 2 --stall-worker 1 --stall-after 5 \
//       --watchdog-timeout-ms 1500
//       worker 1 hangs after 5 journaled windows; the coordinator's
//       watchdog detects the silent heartbeat channel, SIGKILLs the
//       worker, respawns it (it resumes from its sealed journal), and the
//       result stays bit-identical (scripts/chaos_smoke.sh asserts this).
//       --stall-always makes every respawn re-stall, driving the
//       retries-exhausted path: the residual range is redistributed
//       across fresh sub-shards.
//   ./shard_worker --workers 2 --fault-journal-enospc   injected disk-full
//       on every journal append: the run completes undurably, same bits.
//   ./shard_worker --workers 2 --fault-disk-eio         injected EIO on
//       disk-cache publishes: the disk tier goes down, memory tier and
//       the run itself are unaffected.
//
// The per-run layout under --work-dir:
//   run.wNN.seg    worker NN's published shard segment
//   run.wNN.stats  worker NN's wall time / peak RSS / cache counters
//   wNN/journal/   worker NN's private write-ahead journal
//   cache/         shared content-addressed disk cache (opc/latent/orc)
//   merged/        the merged journal the final restore replays
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/common/log.h"
#include "src/core/flow_shard.h"
#include "src/netlist/generators.h"
#include "src/pnr/design.h"

using namespace poc;

namespace {

struct Args {
  bool worker_mode = false;
  std::string design = "tiled120";
  std::string work_dir;
  std::size_t workers = 2;
  std::size_t threads = 0;
  ShardPolicy policy = ShardPolicy::kContiguous;
  bool fresh = false;
  bool disk_cache = true;
  bool in_process = false;
  // Failure injection: --kill-worker W (coordinator) picks the victim;
  // --kill-after N rides into that worker's argv.
  std::size_t kill_worker = static_cast<std::size_t>(-1);
  std::size_t kill_after = 0;
  // Stall injection: --stall-worker W hangs after --stall-after N appends
  // (--stall-always re-stalls every respawn attempt).
  std::size_t stall_worker = static_cast<std::size_t>(-1);
  std::size_t stall_after = 0;
  bool stall_always = false;
  // Watchdog knobs: --watchdog-timeout-ms > 0 turns self-healing on.
  std::uint64_t watchdog_timeout_ms = 0;
  std::uint32_t watchdog_retries = 1;
  std::uint64_t watchdog_poll_ms = 20;
  std::uint64_t watchdog_backoff_ms = 50;
  std::size_t heartbeat_every = 1;
  // I/O fault injection (sticky wildcards through the vfs shim).
  bool fault_journal_enospc = false;
  bool fault_disk_eio = false;
  // Worker-mode shard parameters (filled from the coordinator's argv).
  std::uint32_t worker_id = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint32_t residue = kShardResidueSelf;  ///< sub-shard residue class
};

/// Flow config shared verbatim by the coordinator's final pass and every
/// worker — any divergence would change the config fingerprint and make
/// the coordinator reject the workers' segments.
FlowOptions make_base(const Args& args) {
  FlowOptions opts;
  opts.sta.clock_period = 2200.0;
  opts.threads = args.threads;
  if (args.disk_cache) opts.cache.disk_path = args.work_dir + "/cache";
  return opts;
}

int run_worker(const Args& args, const PlacedDesign& design,
               const StdCellLibrary& lib) {
  ShardWorkerOptions wo;
  wo.spec.worker = args.worker_id;
  wo.spec.workers = static_cast<std::uint32_t>(args.workers);
  wo.spec.policy = args.policy;
  wo.spec.lo = args.lo;
  wo.spec.hi = args.hi;
  wo.spec.residue = args.residue;
  wo.work_dir = args.work_dir;
  wo.kill_after_appends = args.kill_after;
  wo.heartbeat_every_appends = args.heartbeat_every;
  wo.stall_after_appends = args.stall_after;
  wo.stall_once = !args.stall_always;
  return run_shard_worker(design, lib, LithoSimulator{}, make_base(args), wo)
             ? 0
             : 1;
}

int run_coordinator(const Args& args, const PlacedDesign& design,
                    const StdCellLibrary& lib) {
  ShardFlowOptions so;
  so.workers = args.workers;
  so.policy = args.policy;
  so.work_dir = args.work_dir;
  so.share_disk_cache = args.disk_cache;
  so.watchdog.enabled = args.watchdog_timeout_ms > 0;
  so.watchdog.no_progress_timeout_ms = args.watchdog_timeout_ms;
  so.watchdog.poll_interval_ms = args.watchdog_poll_ms;
  so.watchdog.max_respawns = args.watchdog_retries;
  so.watchdog.backoff_initial_ms = args.watchdog_backoff_ms;
  so.heartbeat_every_appends = args.heartbeat_every;
  if (args.in_process && args.stall_after > 0) {
    so.stall_worker = static_cast<std::uint32_t>(args.stall_worker);
    so.stall_after_appends = args.stall_after;
    so.stall_once = !args.stall_always;
  }
  if (!args.in_process) {
    // Capture by value: the lambda outlives this block (run_sharded_flow
    // invokes it after the workers are partitioned).
    so.worker_command = [args](const ShardSpec& spec) {
      std::vector<std::string> argv = {
          "/proc/self/exe",
          "--worker-mode",
          "--design", args.design,
          "--work-dir", args.work_dir,
          "--worker-id", std::to_string(spec.worker),
          "--workers", std::to_string(spec.workers),
          "--policy", shard_policy_name(spec.policy),
          "--lo", std::to_string(spec.lo),
          "--hi", std::to_string(spec.hi),
          "--threads", std::to_string(args.threads),
      };
      if (!args.disk_cache) argv.push_back("--no-disk-cache");
      if (args.heartbeat_every != 1) {
        argv.push_back("--heartbeat-every");
        argv.push_back(std::to_string(args.heartbeat_every));
      }
      if (spec.residue != kShardResidueSelf) {
        argv.push_back("--residue");
        argv.push_back(std::to_string(spec.residue));
      }
      if (spec.worker == args.kill_worker && args.kill_after > 0) {
        argv.push_back("--kill-after");
        argv.push_back(std::to_string(args.kill_after));
      }
      if (spec.worker == args.stall_worker && args.stall_after > 0) {
        argv.push_back("--stall-after");
        argv.push_back(std::to_string(args.stall_after));
        if (args.stall_always) argv.push_back("--stall-always");
      }
      // The I/O fault plan rides to every worker process: the injection
      // is keyed by (kind, domain), so each process re-installs it.
      if (args.fault_journal_enospc) argv.push_back("--fault-journal-enospc");
      if (args.fault_disk_eio) argv.push_back("--fault-disk-eio");
      return argv;
    };
  }

  const ShardFlowResult result =
      run_sharded_flow(design, lib, LithoSimulator{}, make_base(args), so);

  for (const WorkerSegmentOutcome& wo : result.merge.workers) {
    std::printf("worker %02u: %zu records%s%s%s\n", wo.worker, wo.records,
                wo.torn ? " [torn tail sealed]" : "",
                wo.salvaged ? " [salvaged private journal]" : "",
                !wo.segment_found && !wo.salvaged ? " [segment missing]" : "");
  }
  for (const WorkerIntervention& iv : result.interventions) {
    std::printf("intervention: worker %u attempt %u %s (%s)\n", iv.worker,
                iv.attempt, worker_intervention_name(iv.kind),
                iv.detail.c_str());
  }
  for (const FlowHealth::WindowFault& f : result.shard_health.faults) {
    std::printf("shard fault: worker %llu %s (%s)\n",
                static_cast<unsigned long long>(f.index),
                fault_code_name(f.code), f.origin.c_str());
  }
  const CacheCounters cache = result.cache.total();
  std::printf("merged %zu records (%zu duplicates dropped), "
              "residual windows recomputed: %zu\n",
              result.merge.records.size(), result.merge.duplicate_records,
              result.residual_windows);
  std::printf("final pass cache: %llu mem hits, %llu disk hits, %llu misses\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.disk_hits),
              static_cast<unsigned long long>(cache.misses));
  std::printf("annotated worst slack: %.9f ps (drawn %.9f ps)\n",
              result.comparison.annotated.worst_slack,
              result.comparison.drawn.worst_slack);
  // Greppable one-liner for scripts/shard_smoke.sh and the bench harness:
  // ws must be bit-identical for any worker count and any kill point.
  std::printf("SHARD_RESULT workers=%zu policy=%s ws=%.9f residual=%zu "
              "shard_faults=%zu disk_hits=%llu interventions=%zu "
              "redistributed=%zu\n",
              args.workers, shard_policy_name(args.policy),
              result.comparison.annotated.worst_slack,
              result.residual_windows, result.shard_health.faults.size(),
              static_cast<unsigned long long>(cache.disk_hits),
              result.interventions.size(), result.redistributed_windows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);

  Args args;
  args.work_dir =
      (std::filesystem::temp_directory_path() / "poc_shard_run").string();
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--worker-mode") == 0) {
      args.worker_mode = true;
    } else if (std::strcmp(argv[i], "--design") == 0) {
      args.design = next("--design");
    } else if (std::strcmp(argv[i], "--work-dir") == 0) {
      args.work_dir = next("--work-dir");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.workers = static_cast<std::size_t>(std::atoll(next("--workers")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.threads = static_cast<std::size_t>(std::atoll(next("--threads")));
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      const char* p = next("--policy");
      if (std::strcmp(p, "interleaved") == 0) {
        args.policy = ShardPolicy::kInterleaved;
      } else if (std::strcmp(p, "contiguous") == 0) {
        args.policy = ShardPolicy::kContiguous;
      } else {
        std::fprintf(stderr, "unknown policy: %s\n", p);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fresh") == 0) {
      args.fresh = true;
    } else if (std::strcmp(argv[i], "--no-disk-cache") == 0) {
      args.disk_cache = false;
    } else if (std::strcmp(argv[i], "--in-process") == 0) {
      args.in_process = true;
    } else if (std::strcmp(argv[i], "--kill-worker") == 0) {
      args.kill_worker =
          static_cast<std::size_t>(std::atoll(next("--kill-worker")));
    } else if (std::strcmp(argv[i], "--kill-after") == 0) {
      args.kill_after =
          static_cast<std::size_t>(std::atoll(next("--kill-after")));
    } else if (std::strcmp(argv[i], "--stall-worker") == 0) {
      args.stall_worker =
          static_cast<std::size_t>(std::atoll(next("--stall-worker")));
    } else if (std::strcmp(argv[i], "--stall-after") == 0) {
      args.stall_after =
          static_cast<std::size_t>(std::atoll(next("--stall-after")));
    } else if (std::strcmp(argv[i], "--stall-always") == 0) {
      args.stall_always = true;
    } else if (std::strcmp(argv[i], "--watchdog-timeout-ms") == 0) {
      args.watchdog_timeout_ms = static_cast<std::uint64_t>(
          std::atoll(next("--watchdog-timeout-ms")));
    } else if (std::strcmp(argv[i], "--watchdog-retries") == 0) {
      args.watchdog_retries =
          static_cast<std::uint32_t>(std::atoll(next("--watchdog-retries")));
    } else if (std::strcmp(argv[i], "--watchdog-poll-ms") == 0) {
      args.watchdog_poll_ms =
          static_cast<std::uint64_t>(std::atoll(next("--watchdog-poll-ms")));
    } else if (std::strcmp(argv[i], "--watchdog-backoff-ms") == 0) {
      args.watchdog_backoff_ms = static_cast<std::uint64_t>(
          std::atoll(next("--watchdog-backoff-ms")));
    } else if (std::strcmp(argv[i], "--heartbeat-every") == 0) {
      args.heartbeat_every =
          static_cast<std::size_t>(std::atoll(next("--heartbeat-every")));
    } else if (std::strcmp(argv[i], "--fault-journal-enospc") == 0) {
      args.fault_journal_enospc = true;
    } else if (std::strcmp(argv[i], "--fault-disk-eio") == 0) {
      args.fault_disk_eio = true;
    } else if (std::strcmp(argv[i], "--residue") == 0) {
      args.residue = static_cast<std::uint32_t>(std::atoll(next("--residue")));
    } else if (std::strcmp(argv[i], "--worker-id") == 0) {
      args.worker_id =
          static_cast<std::uint32_t>(std::atoll(next("--worker-id")));
    } else if (std::strcmp(argv[i], "--lo") == 0) {
      args.lo = static_cast<std::uint64_t>(std::atoll(next("--lo")));
    } else if (std::strcmp(argv[i], "--hi") == 0) {
      args.hi = static_cast<std::uint64_t>(std::atoll(next("--hi")));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (args.workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 2;
  }
  if (!args.worker_mode && args.fresh) {
    std::filesystem::remove_all(args.work_dir);
  }

  // The I/O fault plan applies in both modes — the coordinator rides the
  // flags onto each worker's argv so every process injects identically.
  if (args.fault_journal_enospc || args.fault_disk_eio) {
    fault::Config cfg;
    cfg.enabled = true;
    if (args.fault_journal_enospc) {
      cfg.targets.push_back({fault::Kind::kIoEnospc,
                             fault::Domain::kJournalIo, fault::kAnyIndex});
    }
    if (args.fault_disk_eio) {
      cfg.targets.push_back({fault::Kind::kIoEio, fault::Domain::kDiskCacheIo,
                             fault::kAnyIndex});
    }
    fault::configure(cfg);
  }

  // Same library file and generator in every process: characterization is
  // deterministic and the coordinator creates the .lib before spawning, so
  // workers just load it and everyone fingerprints the same config.
  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const PlacedDesign design =
      place_and_route(make_benchmark(args.design), lib);
  if (!args.worker_mode) {
    std::printf("design %s: %zu gates, %zu instances, work dir %s\n",
                args.design.c_str(), design.netlist.num_gates(),
                design.layout.num_instances(), args.work_dir.c_str());
  }

  return args.worker_mode ? run_worker(args, design, lib)
                          : run_coordinator(args, design, lib);
}
