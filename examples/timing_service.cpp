// Long-lived timing-query service: load a design once, warm the flow
// (OPC + post-OPC extraction + back-annotation), then answer a stream of
// commands against the incremental TimingGraph without ever re-timing the
// whole netlist.  Each answer is printed with its per-query latency.
//
//   ./timing_service [benchmark] [--stdin]      (default: adder8)
//
// Commands (one per line with --stdin, otherwise a built-in demo script):
//   ws                      worst slack of the warm graph
//   slack <net>             pin slack by net name
//   paths <K>               top-K worst paths
//   retime <n>              commit +5 % delay on the n most critical gates
//   whatif <focus> <dose> <n>  re-extract the n most critical gates at the
//                           shifted exposure through the cached flow, push
//                           the new CDs as a candidate, report the worst-
//                           slack delta, revert
//   stats                   per-command latency counters
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/sta/service.h"

using namespace poc;

namespace {

struct Session {
  PostOpcFlow* flow = nullptr;
  TimingService* service = nullptr;
  std::vector<GateIdx> critical;  ///< most-critical-first retime targets
};

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<GateRetime> scaled_candidates(const Session& s, std::size_t n,
                                          double scale) {
  std::vector<GateRetime> out;
  for (std::size_t i = 0; i < n && i < s.critical.size(); ++i) {
    const GateIdx g = s.critical[i];
    DelayAnnotation ann = s.service->graph().annotations()[g];
    ann.fall_scale *= scale;
    ann.rise_scale *= scale;
    out.push_back({g, ann});
  }
  return out;
}

bool run_command(Session& s, const std::string& line) {
  std::istringstream is(line);
  std::string cmd;
  if (!(is >> cmd) || cmd[0] == '#') return true;
  const auto start = std::chrono::steady_clock::now();
  if (cmd == "quit") return false;
  if (cmd == "ws") {
    const Ps ws = s.service->worst_slack();
    std::printf("ws: %.6f ps  [%.1f us]\n", ws, elapsed_us(start));
  } else if (cmd == "slack") {
    std::string net;
    is >> net;
    if (!s.flow->design().netlist.has_net(net)) {
      std::printf("slack: unknown net '%s'\n", net.c_str());
      return true;
    }
    const Ps sl = s.service->slack(net);
    std::printf("slack %s: %.6f ps  [%.1f us]\n", net.c_str(), sl,
                elapsed_us(start));
  } else if (cmd == "paths") {
    std::size_t k = 5;
    is >> k;
    const auto paths = s.service->paths(k);
    std::printf("paths %zu:  [%.1f us]\n", k, elapsed_us(start));
    for (const TimingPath& p : paths) {
      std::printf("  %s\n",
                  format_path(s.flow->design().netlist, p).c_str());
    }
  } else if (cmd == "retime") {
    std::size_t n = 1;
    is >> n;
    const RetimeReport r = s.service->retime(scaled_candidates(s, n, 1.05));
    std::printf("retime %zu: ws %.6f -> %.6f ps (%zu gates moved, %zu "
                "arrival evals)  [%.1f us]\n",
                n, r.worst_slack_before, r.worst_slack_after,
                r.gates_changed, r.arrival_evals, elapsed_us(start));
  } else if (cmd == "whatif") {
    double focus = 0.0, dose = 1.0;
    std::size_t n = 4;
    is >> focus >> dose >> n;
    Exposure e;
    e.focus_nm = focus;
    e.dose = dose;
    std::vector<GateIdx> subset(
        s.critical.begin(),
        s.critical.begin() +
            std::min<std::size_t>(n, s.critical.size()));
    // Re-extract just those windows through the cached flow and push the
    // fresh CDs as a candidate annotation set.
    const auto ann = s.flow->annotate(s.flow->extract(e, subset));
    std::vector<GateRetime> candidate;
    for (GateIdx g : subset) candidate.push_back({g, ann[g]});
    const WhatIfReport r = s.service->whatif(candidate);
    std::printf("whatif focus=%.0f dose=%.3f over %zu gates: ws %.6f -> "
                "%.6f ps (delta %+.6f)  [%.1f us]\n",
                focus, dose, subset.size(), r.worst_slack_before,
                r.worst_slack_after, r.delta_ps, elapsed_us(start));
  } else if (cmd == "stats") {
    std::printf("%s", s.service->stats_summary().c_str());
  } else {
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  std::string bench = "adder8";
  bool use_stdin = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdin") {
      use_stdin = true;
    } else {
      bench = arg;
    }
  }

  const StdCellLibrary lib = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_example.lib")
          .string());
  const Netlist nl = make_benchmark(bench);
  const PlacedDesign design = place_and_route(nl, lib);

  FlowOptions opts;
  {
    PostOpcFlow probe(design, lib);
    opts.sta.clock_period = probe.run_sta(nullptr).worst_arrival * 1.12;
  }
  PostOpcFlow flow(design, lib, LithoSimulator{}, opts);

  // Warm once: OPC every window, extract post-OPC CDs at nominal exposure,
  // load the annotations into the service's graph.
  const auto warm_start = std::chrono::steady_clock::now();
  flow.run_opc(OpcMode::kRuleBased);
  TimingService service = flow.make_timing_service();
  service.load_annotations(flow.annotate(flow.extract({})));
  std::printf("loaded %s: %zu gates, warm-up %.1f ms, annotated ws %.6f ps\n",
              bench.c_str(), nl.num_gates(),
              elapsed_us(warm_start) / 1000.0, service.worst_slack());

  Session session{&flow, &service, flow.tag_critical_gates(30.0)};

  if (use_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!run_command(session, line)) break;
    }
  } else {
    const std::vector<std::string> script = {
        "ws",
        "paths 3",
        "retime 2",
        "ws",
        "whatif 60 1.02 4",
        "whatif -60 0.98 4",
        "ws",
        "stats",
    };
    for (const std::string& line : script) {
      std::printf("> %s\n", line.c_str());
      if (!run_command(session, line)) break;
    }
  }
  return 0;
}
